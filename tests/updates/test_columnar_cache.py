"""Regression tests for the (document id, reindex version) cache keying.

The columnar view and document-stats caches key on the pair, so a
document object that is *reused* after a mutation (reindexed in place,
or patched + version-bumped by the update layer) can never be served a
stale entry: the lookup key itself moves with the version. Superseded
versions must also be evicted eagerly — one live entry per document —
unless the MVCC layer pinned them (``pin_document_version``), in which
case they stay resident until the last pin is released.
"""

from __future__ import annotations

from repro.xml.columnar import (
    _COLUMNAR_CACHE,
    _PINNED_VERSIONS,
    _STATS_CACHE,
    ColumnarDocument,
    columnar,
    document_stats,
    install_columnar,
    install_document_stats,
    invalidate_document_caches,
    pin_document_version,
    release_document_version,
    stats_from_view,
)
from repro.xml.model import XMLDocument, element


def build_document() -> XMLDocument:
    return XMLDocument(element(
        "a",
        element("b", element("c", text="1")),
        element("d", text="2"),
    ))


def entries_for(cache: dict, document: XMLDocument) -> list:
    return [key for key in cache if key[0] == id(document)]


class TestVersionKeying:
    def test_memoised_per_version(self):
        document = build_document()
        view = columnar(document)
        assert columnar(document) is view
        assert entries_for(_COLUMNAR_CACHE, document) \
            == [(id(document), document.version)]

    def test_reused_document_never_serves_stale_view(self):
        """The regression: mutate + reindex the same object, re-read."""
        document = build_document()
        stale_view = columnar(document)
        stale_stats = document_stats(document)
        document.root.add("e", text="3")
        document.reindex()
        view = columnar(document)
        stats = document_stats(document)
        assert view is not stale_view
        assert stats is not stale_stats
        assert view.size == document.size() == stale_view.size + 1
        assert stats.tag_counts["e"] == 1
        assert "e" not in stale_stats.tag_counts

    def test_superseded_versions_are_evicted(self):
        document = build_document()
        for _ in range(5):
            columnar(document)
            document_stats(document)
            document.reindex()
        columnar(document)
        document_stats(document)
        assert entries_for(_COLUMNAR_CACHE, document) \
            == [(id(document), document.version)]
        assert entries_for(_STATS_CACHE, document) \
            == [(id(document), document.version)]

    def test_weakref_death_still_evicts(self):
        document = build_document()
        columnar(document)
        document_stats(document)
        ident = id(document)
        del document
        import gc

        gc.collect()
        assert not [key for key in _COLUMNAR_CACHE if key[0] == ident]
        assert not [key for key in _STATS_CACHE if key[0] == ident]


class TestInstall:
    def test_installed_view_is_served_for_current_version(self):
        document = build_document()
        view = ColumnarDocument(document)
        document.bump_version()
        assert install_columnar(document, view) is view
        assert columnar(document) is view
        stats = stats_from_view(view)
        assert install_document_stats(document, stats) is stats
        assert document_stats(document) is stats

    def test_install_replaces_prior_version_entry(self):
        document = build_document()
        columnar(document)
        view = ColumnarDocument(document)
        document.bump_version()
        install_columnar(document, view)
        assert entries_for(_COLUMNAR_CACHE, document) \
            == [(id(document), document.version)]


class TestVersionPins:
    """The MVCC escape hatch: a pinned (document, version) entry
    survives both supersede-eviction and explicit invalidation, and is
    purged when the last pin is released."""

    def test_pinned_entry_survives_supersession(self):
        document = build_document()
        pinned_version = document.version
        view = columnar(document)
        pin_document_version(document)
        document.reindex()
        columnar(document)  # installs the new version
        key = (id(document), pinned_version)
        assert key in _COLUMNAR_CACHE
        assert _COLUMNAR_CACHE[key][1] is view
        release_document_version(document, pinned_version)
        assert key not in _COLUMNAR_CACHE

    def test_pinned_entry_survives_explicit_invalidation(self):
        document = build_document()
        view = columnar(document)
        stats = document_stats(document)
        pin_document_version(document)
        invalidate_document_caches(document)
        assert columnar(document) is view
        assert document_stats(document) is stats
        release_document_version(document)

    def test_pins_are_counted(self):
        document = build_document()
        version = document.version
        columnar(document)
        pin_document_version(document)
        pin_document_version(document)
        document.reindex()
        columnar(document)
        key = (id(document), version)
        release_document_version(document, version)
        assert key in _COLUMNAR_CACHE  # one pin still live
        release_document_version(document, version)
        assert key not in _COLUMNAR_CACHE

    def test_release_of_current_version_keeps_the_entry(self):
        document = build_document()
        view = columnar(document)
        pin_document_version(document)
        release_document_version(document)
        # Never superseded: the entry stays under weakref discipline.
        assert columnar(document) is view

    def test_unbalanced_release_is_ignored(self):
        document = build_document()
        columnar(document)
        release_document_version(document)  # no pin: no-op
        assert entries_for(_COLUMNAR_CACHE, document) \
            == [(id(document), document.version)]
        assert not [key for key in _PINNED_VERSIONS
                    if key[0] == id(document)]
