"""Freshness of delta-maintained statistics, dictionaries and caches.

After every update batch the incrementally maintained artifacts must
*equal* their rebuild-from-scratch counterparts:

* :class:`VersionedRelation` stats vs a full
  :func:`~repro.relational.statistics.relation_stats` rescan (and the
  planner cache must serve the maintained object without a rescan);
* :class:`DocumentEditor`-maintained :class:`DocumentStats` vs stats
  computed on a cloned, freshly indexed document;
* :class:`IncrementalInstance` dictionaries vs from-scratch engine
  dictionaries — same domains while appended codes are live, and
  code-for-code equality after a vacuum;
* the planner's :class:`QueryStatistics` entry refreshing (not
  dropping) across updates.
"""

from __future__ import annotations

from repro.core.multimodel import MultiModelQuery
from repro.data.random_instances import (
    random_multimodel_instance,
    random_relation,
)
from repro.engine.dictionary import Dictionary, DictionaryBuilder
from repro.engine.planner import (
    cached_relation_stats,
    refresh_query_statistics,
    statistics_for,
)
from repro.relational.statistics import relation_stats
from repro.updates.documents import DocumentEditor
from repro.updates.encodings import IncrementalInstance
from repro.updates.relations import VersionedRelation
from repro.updates.session import QuerySession
from repro.xml.columnar import document_stats
from harness import clone_document, clone_query, random_session_op, \
    random_subtree, seeded_rng


def test_relation_stats_follow_every_batch():
    rng = seeded_rng("relation-stats")
    relation = random_relation(rng, "R", ["a", "b", "c"], max_rows=20,
                               value_range=5)
    versioned = VersionedRelation(relation)
    for step in range(40):
        row = tuple(rng.randint(0, 5) for _ in range(3))
        if rng.random() < 0.5:
            versioned.insert(row)
        else:
            versioned.delete(row)
        rescan = relation_stats(versioned.relation)
        assert versioned.stats() == rescan, f"step {step}"
        # The planner cache serves the installed (maintained) object.
        assert cached_relation_stats(versioned.relation) \
            is versioned.stats()


def test_relation_stats_batch_and_noop_filtering():
    versioned = VersionedRelation(
        random_relation(seeded_rng("batch"), "R", ["a", "b"]))
    present = next(iter(versioned.relation.rows), None)
    delta = versioned.apply(
        inserted=[(9, 9), (9, 9)] + ([present] if present else []),
        deleted=[(123, 456)])
    assert delta.inserted == ((9, 9),)
    assert delta.deleted == ()
    assert versioned.stats() == relation_stats(versioned.relation)


def test_document_stats_follow_every_edit():
    rng = seeded_rng("document-stats")
    for threshold in (10.0, 0.0):  # patch path and rebuild path
        instance = random_multimodel_instance(rng.randrange(10_000))
        document = instance.twigs[0].document
        editor = DocumentEditor(document, churn_threshold=threshold)
        for step in range(12):
            nodes = document.nodes()
            roll = rng.random()
            if roll < 0.4:
                editor.insert_subtree(rng.choice(nodes),
                                      random_subtree(rng, ["x", "y", "z"]))
            elif roll < 0.7 and len(nodes) > 1:
                editor.delete_subtree(rng.choice(nodes[1:]))
            else:
                editor.change_value(rng.choice(nodes),
                                    str(rng.randint(0, 3)))
            maintained = document_stats(document)
            scratch = document_stats(clone_document(document))
            assert maintained == scratch, \
                f"threshold {threshold}, step {step}"


def test_dictionary_codes_follow_updates():
    rng = seeded_rng("dictionary")
    relations = [random_relation(rng, "R", ["a", "b"], value_range=6),
                 random_relation(rng, "S", ["b", "c"], value_range=6)]
    instance = IncrementalInstance("Q", relations,
                                   overflow_threshold=0.25)
    current = {r.name: set(r.rows) for r in relations}

    def scratch_dictionaries() -> dict[str, Dictionary]:
        builder = DictionaryBuilder()
        for name, rows in current.items():
            schema = relations[0].schema if name == "R" \
                else relations[1].schema
            builder.add_rows(schema.attributes, rows)
        return builder.build()

    for step in range(30):
        name = rng.choice(["R", "S"])
        row = (rng.randint(0, 12), rng.randint(0, 12))  # grows the domain
        if rng.random() < 0.6 or not current[name]:
            current[name].add(row)
            instance.apply(name, added=[row])
        else:
            victim = rng.choice(sorted(current[name]))
            current[name].discard(victim)
            instance.apply(name, removed=[victim])
        for attribute, scratch in scratch_dictionaries().items():
            maintained = instance.dictionaries[attribute]
            # Maintained domains cover the live values (supersets only
            # through not-yet-vacuumed deletions)...
            for value in scratch.values:
                assert maintained.encode(value) is not None
            # ...and every maintained code decodes to its own value.
            for value, code in maintained.codes.items():
                assert maintained.decode(code) == value

    # After a vacuum, codes equal a from-scratch build, code for code.
    instance.vacuum()
    for attribute, scratch in scratch_dictionaries().items():
        maintained = instance.dictionaries[attribute]
        assert list(maintained.values) == list(scratch.values), attribute
        assert maintained.codes == scratch.codes, attribute
        assert maintained.overflow == 0


def test_trie_contents_track_rows_through_compaction():
    rng = seeded_rng("tries")
    relation = random_relation(rng, "R", ["a", "b"], value_range=4)
    instance = IncrementalInstance("Q", [relation],
                                   overflow_threshold=0.1)
    rows = set(relation.rows)
    for step in range(25):
        row = (rng.randint(0, 30), rng.randint(0, 30))
        if rng.random() < 0.7 or not rows:
            rows.add(row)
            instance.apply("R", added=[row])
        else:
            victim = rng.choice(sorted(rows))
            rows.discard(victim)
            instance.apply("R", removed=[victim])
        trie, _positions = instance.tries["R"]
        decoded = {
            tuple(instance.dictionaries[a].decode(code)
                  for a, code in zip(trie.order, encoded_row))
            for encoded_row in trie.tuples()}
        assert decoded == rows, f"step {step}"
        assert trie.size == len(rows)
    assert instance.compactions > 0  # threshold 0.1 must have tripped


def test_trie_delta_rejects_wrong_arity():
    """Regression: a short row must not descend a shared prefix and
    silently corrupt the size counter."""
    from repro.engine.encoded import EncodedTrie
    from repro.errors import EngineError
    import pytest

    trie = EncodedTrie("R", ("a", "b"), [(1, 2), (1, 3)])
    with pytest.raises(EngineError):
        trie.remove((1,))
    with pytest.raises(EngineError):
        trie.insert((1, 2, 3))
    assert trie.size == 2
    assert list(trie.tuples()) == [(1, 2), (1, 3)]


def test_query_statistics_refresh_not_drop():
    rng = seeded_rng("planner-refresh")
    query = random_multimodel_instance(rng.randrange(10_000))
    session = QuerySession(query, churn_threshold=10.0)
    stats = statistics_for(query)
    before = stats.domain_estimates()
    for _ in range(4):
        random_session_op(rng, session, tags=["x", "y", "z"])
    # The cached entry survives updates (refresh, not drop) ...
    assert statistics_for(query) is stats
    # ... and re-derives the estimates from the maintained inputs,
    # matching a from-scratch clone's estimates exactly.
    clone = clone_query(query)  # held: the stats entry is a weakref
    fresh = statistics_for(clone)
    assert stats.domain_estimates() == fresh.domain_estimates()
    assert stats.path_cardinality_estimates() == \
        fresh.path_cardinality_estimates()
    del before


def test_explicit_invalidate_hooks():
    from repro.engine.planner import (
        _RELATION_STATS_CACHE,
        invalidate_relation_stats,
    )
    from repro.xml.columnar import (
        _COLUMNAR_CACHE,
        _STATS_CACHE,
        columnar,
        invalidate_document_caches,
    )

    rng = seeded_rng("invalidate")
    relation = random_relation(rng, "R", ["a"])
    cached_relation_stats(relation)
    assert id(relation) in _RELATION_STATS_CACHE
    invalidate_relation_stats(relation)
    assert id(relation) not in _RELATION_STATS_CACHE

    document = random_multimodel_instance(0).twigs[0].document
    columnar(document)
    document_stats(document)
    assert any(key[0] == id(document) for key in _COLUMNAR_CACHE)
    assert any(key[0] == id(document) for key in _STATS_CACHE)
    invalidate_document_caches(document)
    assert not any(key[0] == id(document) for key in _COLUMNAR_CACHE)
    assert not any(key[0] == id(document) for key in _STATS_CACHE)
