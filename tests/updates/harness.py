"""Shared machinery for the update-subsystem test suites.

The differential harness is *seeded*: every randomized test derives its
generator from ``REPRO_UPDATE_SEED`` (default a fixed constant, so plain
``pytest`` runs are reproducible; CI additionally runs the suite with a
randomized seed). The active seed is echoed in the pytest header (see
``conftest.py``) and in every assertion message, so any failure names
the seed that reproduces it.
"""

from __future__ import annotations

import os
import random

from repro.relational.relation import Relation
from repro.xml.model import XMLDocument, XMLNode

#: The suite-wide base seed (override: REPRO_UPDATE_SEED=12345 pytest ...).
UPDATE_SEED = int(os.environ.get("REPRO_UPDATE_SEED", "20260728"))


def seeded_rng(salt: object) -> random.Random:
    """A generator derived from the suite seed and a per-site salt."""
    return random.Random(f"{UPDATE_SEED}:{salt}")


# -- deep copies for the rebuild-from-scratch oracle ------------------------

def clone_document(document: XMLDocument) -> XMLDocument:
    """A structurally equal document built from scratch (fresh labels,
    fresh indexes, no shared caches with the original)."""
    return XMLDocument(document.root.copy())


def clone_query(query):
    """A rebuild-from-scratch copy of a multi-model query: fresh
    relation objects, fresh documents, fresh twig bindings."""
    from repro.core.multimodel import MultiModelQuery, TwigBinding

    relations = [Relation(r.name, r.schema, r.rows)
                 for r in query.relations]
    twigs = [TwigBinding(binding.twig, clone_document(binding.document))
             for binding in query.twigs]
    return MultiModelQuery(relations, twigs, name=query.name)


# -- random update streams --------------------------------------------------

def random_subtree(rng: random.Random, tags: "list[str]", *,
                   max_nodes: int = 4, value_range: int = 3) -> XMLNode:
    """A small random subtree with typed text values (detached)."""
    def text() -> str:
        return (str(rng.randint(0, value_range))
                if rng.random() < 0.7 else "")

    root = XMLNode(rng.choice(tags), text=text())
    nodes = [root]
    for _ in range(rng.randint(0, max_nodes - 1)):
        nodes.append(rng.choice(nodes).add(rng.choice(tags), text=text()))
    return root


def random_session_op(rng: random.Random, session, *,
                      tags: "list[str]", value_range: int = 3) -> str:
    """Apply one random update through *session*; returns a label."""
    choices = []
    if session.relations:
        choices.extend(["rel_insert", "rel_delete"])
    if session.answers:
        choices.extend(["doc_insert", "doc_delete", "doc_value"])
    kind = rng.choice(choices)
    if kind in ("rel_insert", "rel_delete"):
        name = rng.choice(sorted(session.relations))
        relation = session.relations[name].relation
        if kind == "rel_delete" and relation.rows and rng.random() < 0.7:
            row = rng.choice(sorted(relation.rows))  # hit an existing row
        else:
            row = tuple(rng.randint(0, value_range)
                        for _ in relation.schema)
        (session.insert if kind == "rel_insert" else session.delete)(
            name, row)
        return f"{kind}:{name}{row!r}"
    twig_name = rng.choice(sorted(session.answers))
    document = session._editor_of[twig_name].document
    nodes = document.nodes()
    if kind == "doc_insert":
        parent = rng.choice(nodes)
        session.insert_subtree(
            twig_name, parent, random_subtree(rng, tags),
            index=rng.randint(0, len(parent.children)))
    elif kind == "doc_delete" and len(nodes) > 1:
        session.delete_subtree(twig_name, rng.choice(nodes[1:]))
    else:
        session.change_value(twig_name, rng.choice(nodes),
                             str(rng.randint(0, value_range)))
        kind = "doc_value"
    return f"{kind}:{twig_name}"
