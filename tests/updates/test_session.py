"""QuerySession behaviour: API contracts, logs, versioning, fallbacks."""

from __future__ import annotations

import pytest

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.data.random_instances import random_multimodel_instance
from repro.errors import UpdateError
from repro.relational.relation import Relation
from repro.updates.delta import SUBTREE_INSERT, VALUE_CHANGE
from repro.updates.session import QuerySession
from repro.xml.model import XMLDocument, XMLNode, element
from repro.xml.twig import TwigQuery

from harness import random_subtree, seeded_rng


def small_query() -> MultiModelQuery:
    document = XMLDocument(element(
        "lib",
        element("book", element("isbn", text="7"),
                element("price", text="30")),
        element("book", element("isbn", text="9"),
                element("price", text="40")),
    ))
    root = TwigQuery.build(
        "book", lambda book: (book.child("isbn"), book.child("price")),
        name="book")
    orders = Relation("Orders", ("user", "isbn"), [(1, 7), (2, 9), (3, 8)])
    return MultiModelQuery([orders], [TwigBinding(root, document)],
                           name="Q")


class TestRelationalUpdates:
    def test_insert_then_delete_roundtrip(self):
        query = small_query()
        session = QuerySession(query)
        baseline = session.answer()
        delta = session.insert("Orders", (9, 7))
        assert delta.inserted == ((9, 7),)
        assert (9, 7, None, 30) in session.answer().rows
        session.delete("Orders", (9, 7))
        assert session.answer() == baseline

    def test_versioned_logs_and_swapped_relation(self):
        query = small_query()
        session = QuerySession(query)
        session.insert("Orders", (4, 9))
        versioned = session.relations["Orders"]
        assert versioned.version == 1
        assert len(versioned.log) == 1
        # The live query now holds the new Relation object.
        assert query.relations[0] is versioned.relation
        assert (4, 9) in versioned.relation.rows

    def test_unknown_relation_rejected(self):
        session = QuerySession(small_query())
        with pytest.raises(UpdateError):
            session.insert("Nope", (1, 2))

    def test_arity_mismatch_rejected(self):
        session = QuerySession(small_query())
        with pytest.raises(UpdateError):
            session.insert("Orders", (1, 2, 3))
        with pytest.raises(UpdateError):
            session.delete("Orders", (1, 2, 3))


class TestDocumentUpdates:
    def test_subtree_insert_extends_answer(self):
        query = small_query()
        session = QuerySession(query)
        book = XMLNode("book")
        book.add("isbn", text="8")
        book.add("price", text="99")
        library = query.twigs[0].document.root
        delta = session.insert_subtree("book", library, book)
        assert delta.kind == SUBTREE_INSERT and not delta.rebuilt
        assert (3, 8, None, 99) in session.answer().rows
        session.delete_subtree("book", book)
        assert (3, 8, None, 99) not in session.answer().rows

    def test_value_change_rewrites_answer(self):
        query = small_query()
        session = QuerySession(query)
        document = query.twigs[0].document
        price = document.nodes("price")[0]
        delta = session.change_value("book", price, "31")
        assert delta.kind == VALUE_CHANGE
        assert (1, 7, None, 31) in session.answer().rows
        assert (1, 7, None, 30) not in session.answer().rows

    def test_root_deletion_rejected(self):
        query = small_query()
        session = QuerySession(query)
        with pytest.raises(UpdateError):
            session.delete_subtree("book", query.twigs[0].document.root)

    def test_foreign_node_rejected(self):
        query = small_query()
        session = QuerySession(query)
        stray = XMLDocument(element("lib", element("book")))
        with pytest.raises(UpdateError):
            session.delete_subtree("book", stray.root.children[0])

    def test_attached_subtree_rejected(self):
        query = small_query()
        session = QuerySession(query)
        document = query.twigs[0].document
        with pytest.raises(UpdateError):
            session.insert_subtree("book", document.root,
                                   document.root.children[0])

    def test_own_root_as_subtree_rejected(self):
        """Regression: inserting the document's own root under one of
        its descendants would create a parent cycle (and hang)."""
        query = small_query()
        session = QuerySession(query)
        document = query.twigs[0].document
        with pytest.raises(UpdateError):
            session.insert_subtree("book", document.root.children[0],
                                   document.root)

    def test_foreign_document_root_rejected(self):
        """Regression: a live foreign document's root must not be
        stolen and relabelled in place; a detached copy is fine."""
        query = small_query()
        session = QuerySession(query)
        document = query.twigs[0].document
        stray = XMLDocument(element("book", element("isbn", text="5"),
                                    element("price", text="1")))
        with pytest.raises(UpdateError):
            session.insert_subtree("book", document.root, stray.root)
        # The sanctioned form: insert a detached structural copy.
        session.insert_subtree("book", document.root, stray.root.copy())
        assert (None, 5, 1) in session.answers["book"].relation().rows
        assert stray.root.parent is None  # foreign tree untouched
        assert stray.root.start == 0  # and keeps its own labels

    def test_deleted_subtree_can_be_reinserted(self):
        query = small_query()
        session = QuerySession(query)
        document = query.twigs[0].document
        book = document.root.children[0]
        baseline = session.answer()
        session.delete_subtree("book", book)
        session.insert_subtree("book", document.root, book, index=0)
        assert session.answer() == baseline

    def test_churn_fallback_rebuilds(self):
        query = small_query()
        session = QuerySession(query, churn_threshold=0.0)
        book = XMLNode("book")
        book.add("isbn", text="8")
        book.add("price", text="99")
        delta = session.insert_subtree(
            "book", query.twigs[0].document.root, book)
        assert delta.rebuilt
        editor = session._editor_of["book"]
        assert editor.rebuilds == 1 and editor.patches == 0
        assert (3, 8, None, 99) in session.answer().rows

    def test_patch_and_rebuild_paths_agree(self):
        rng = seeded_rng("paths-agree")
        patched = QuerySession(random_multimodel_instance(11),
                               churn_threshold=10.0)
        rebuilt = QuerySession(random_multimodel_instance(11),
                               churn_threshold=0.0)
        for session in (patched, rebuilt):
            binding = session.query.twigs[0]
            anchor = binding.document.root
            sub = random_subtree(seeded_rng("paths-agree-sub"),
                                 ["x", "y", "z"])
            session.insert_subtree(binding.name, anchor, sub, index=0)
        assert patched.answer().sorted_rows() \
            == rebuilt.answer().sorted_rows()


class TestSessionState:
    def test_version_advances_per_update(self):
        session = QuerySession(small_query())
        v0 = session.version
        session.insert("Orders", (5, 5))
        assert session.version > v0

    def test_answer_object_cached_between_updates(self):
        session = QuerySession(small_query())
        assert session.answer() is session.answer()
        session.insert("Orders", (5, 5))
        fresh = session.answer()
        assert fresh is session.answer()

    def test_kernels_run_over_maintained_instance(self):
        query = small_query()
        session = QuerySession(query)
        session.insert("Orders", (9, 7))
        expected = query.naive_join()
        assert session.run("generic_join") == expected
        assert session.run("leapfrog") == expected
