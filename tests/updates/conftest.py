"""Pytest wiring for the update suites: echo the differential seed."""

from __future__ import annotations

from harness import UPDATE_SEED


def pytest_report_header(config) -> str:
    return (f"update-oracle seed: {UPDATE_SEED} "
            f"(reproduce with REPRO_UPDATE_SEED={UPDATE_SEED})")
