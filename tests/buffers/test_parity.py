"""List-backed vs buffer-backed parity for every registered algorithm.

The structural guarantee of the buffers tentpole: routing the engine's
sorted code sequences through typed arrays changes the representation
and nothing else. :func:`~repro.buffers.layout.list_backend` forces
``pack``/``make`` to return plain lists, so building the *same* inputs
inside the context yields a list-backed twin through identical call
sites — every registered join and twig algorithm must then produce
identical rows **and identical instrumentation counters** on both,
including after update splices and across typecode-width boundaries.
"""

import random

import pytest

from repro.buffers.layout import as_list, is_buffer, list_backend
from repro.core.multimodel import MultiModelQuery
from repro.engine.encoded import EncodedInstance
from repro.engine.interface import available_algorithms, get_algorithm
from repro.instrumentation import JoinStats
from repro.relational.relation import Relation
from repro.updates.documents import DocumentEditor
from repro.xml.columnar import ColumnarDocument, columnar
from repro.xml.generator import random_document
from repro.xml.interface import available_twig_algorithms, \
    get_twig_algorithm
from repro.xml.model import XMLDocument, element
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xml.twig_parser import parse_twig

JOIN_ALGORITHMS = [name for name in available_algorithms()
                   if name != "baseline"]  # baseline never touches tries


def triangle_relations(n, *, seed=5):
    rng = random.Random(seed)
    edges = sorted({(rng.randrange(n), rng.randrange(n))
                    for _ in range(4 * n)})
    return [Relation("R", ("a", "b"), edges),
            Relation("S", ("b", "c"), edges),
            Relation("T", ("a", "c"), edges)]


def counters(stats):
    """The deterministic counter part of a stats summary (no wall time)."""
    return {key: value for key, value in stats.summary().items()
            if "time" not in key}


def run_join(instance, algorithm):
    stats = JoinStats()
    result = get_algorithm(algorithm).run(instance, stats=stats)
    return sorted(result.rows), counters(stats)


def build_instance(relations, order, algorithm):
    if algorithm == "xjoin":  # xjoin requires the query-carrying build
        query = MultiModelQuery(relations, name="Q")
        return EncodedInstance.from_query(query, order)
    return EncodedInstance.from_relations(relations, order)


class TestJoinParity:
    # n=300 pushes the code domain past 255, so the level buffers sit
    # on the 8->16 bit boundary: top-level codes pack as "H", deeper
    # singleton levels as "B".
    @pytest.mark.parametrize("algorithm", JOIN_ALGORITHMS)
    @pytest.mark.parametrize("n", [40, 300])
    def test_rows_and_counters_identical(self, algorithm, n):
        relations = triangle_relations(n)
        order = ("a", "b", "c")
        buffered = build_instance(relations, order, algorithm)
        assert is_buffer(buffered.tries[0].root.keys)
        with list_backend():
            listed = build_instance(relations, order, algorithm)
        assert not is_buffer(listed.tries[0].root.keys)
        rows_b, stats_b = run_join(buffered, algorithm)
        rows_l, stats_l = run_join(listed, algorithm)
        assert rows_b == rows_l
        assert stats_b == stats_l

    @pytest.mark.parametrize("algorithm", JOIN_ALGORITHMS)
    def test_parity_after_trie_splices(self, algorithm):
        relations = triangle_relations(60)
        order = ("a", "b", "c")
        buffered = build_instance(relations, order, algorithm)
        with list_backend():
            listed = build_instance(relations, order, algorithm)
        # Splice the same rows into both twins through the public
        # insert/remove path (the update layer's trie maintenance).
        for trie_b, trie_l in zip(buffered.tries, listed.tries):
            rows = list(trie_b.tuples())
            victims = rows[:: max(1, len(rows) // 7)][:5]
            for row in victims:
                trie_b.remove(row)
                trie_l.remove(row)
            for row in victims[::-1]:
                trie_b.insert(row)
                trie_l.insert(row)
        rows_b, stats_b = run_join(buffered, algorithm)
        rows_l, stats_l = run_join(listed, algorithm)
        assert rows_b == rows_l
        assert stats_b == stats_l


def sample_document():
    tree = element(
        "lib",
        element("shelf",
                element("book", element("title", text="a"),
                        element("year", text="1999")),
                element("book", element("title", text="b"))),
        element("shelf", element("book", element("title", text="c"))),
    )
    return XMLDocument(tree)


TWIGS = [
    "b=book(/t=title)",
    "s=shelf(//t=title)",
    "b=book(/t=title, /y=year)",
]


class TestTwigParity:
    @pytest.mark.parametrize("algorithm", available_twig_algorithms())
    @pytest.mark.parametrize("pattern", TWIGS)
    def test_matchers_identical_on_both_backends(self, algorithm, pattern):
        twig = parse_twig(pattern)
        matcher = get_twig_algorithm(algorithm)
        if not matcher.supports(twig):
            pytest.skip(f"{algorithm} does not support {pattern!r}")
        rng = random.Random(29)
        for _ in range(4):
            document = random_document(rng, max_nodes=60)
            twin = parse_document(serialize(document))
            buffered_view = ColumnarDocument(document)
            assert is_buffer(buffered_view.starts)
            with list_backend():
                listed_view = ColumnarDocument(twin)
            assert not is_buffer(listed_view.starts)
            stats_b, stats_l = JoinStats(), JoinStats()
            rows_b = matcher.run(document, twig, stats=stats_b)
            rows_l = matcher.run(twin, twig, stats=stats_l)
            assert sorted(rows_b.rows) == sorted(rows_l.rows)
            assert counters(stats_b) == counters(stats_l)

    @pytest.mark.parametrize("algorithm", available_twig_algorithms())
    def test_parity_after_update_splices(self, algorithm):
        twig = parse_twig("b=book(/t=title)")
        matcher = get_twig_algorithm(algorithm)
        if not matcher.supports(twig):
            pytest.skip(f"{algorithm} does not support the twig")
        document = sample_document()
        twin = sample_document()

        def edit(doc):
            editor = DocumentEditor(doc, churn_threshold=1.0)
            subtree = element("book", element("title", text="zz"))
            editor.insert_subtree(doc.root.children[1], subtree)
            editor.delete_subtree(doc.root.children[0].children[1])

        edit(document)
        with list_backend():
            edit(twin)
        rows_b = matcher.run(document, twig)
        rows_l = matcher.run(twin, twig)
        assert sorted(rows_b.rows) == sorted(rows_l.rows)

    def test_update_splices_keep_columns_byte_identical(self):
        document = sample_document()
        twin = sample_document()

        def edit(doc):
            editor = DocumentEditor(doc, churn_threshold=1.0)
            subtree = element("book", element("title", text="zz"),
                              element("year", text="2024"))
            editor.insert_subtree(doc.root.children[0], subtree, index=1)
            editor.delete_subtree(doc.root.children[1].children[0])
            return columnar(doc)

        view_b = edit(document)
        with list_backend():
            view_l = edit(twin)
        assert is_buffer(view_b.starts) and not is_buffer(view_l.starts)
        for column in ("starts", "ends", "levels", "parents",
                       "tag_ids", "path_ids", "values"):
            assert as_list(getattr(view_b, column)) == \
                as_list(getattr(view_l, column)), column
        assert view_b.tags == view_l.tags
        for tid in range(len(view_b.tags)):
            assert as_list(view_b.tag_nids[tid]) == \
                as_list(view_l.tag_nids[tid])
            assert as_list(view_b.tag_starts[tid]) == \
                as_list(view_l.tag_starts[tid])
            assert as_list(view_b.tag_ends[tid]) == \
                as_list(view_l.tag_ends[tid])
        for pid in range(len(view_b.paths)):
            assert as_list(view_b.nids_by_path[pid]) == \
                as_list(view_l.nids_by_path[pid])
