"""Shared-memory arenas, zero-copy attachment and transport routing.

Covers the ``shm`` transport stack bottom-up: the raw
:class:`~repro.buffers.shm.SharedArena` segment layout, document- and
instance-level publish/attach round trips, the executor's transport
routing (including every :class:`~repro.errors.TransportError` case),
the structural zero-pickling guarantee, a 2-worker **spawn** pool smoke
(twig and join), and the ``/dev/shm`` leak check after every pool run.
"""

import pickle

import pytest

from repro.buffers.bench import leaked_segments
from repro.buffers.layout import as_list, pack
from repro.buffers.shm import SharedArena
from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.engine.encoded import EncodedInstance
from repro.engine.interface import get_algorithm
from repro.errors import EngineError, TransportError
from repro.parallel import executor as executor_module
from repro.parallel.executor import (
    ParallelExecutor,
    available_transports,
    default_transport,
)
from repro.parallel.shm import (
    attach_document,
    attach_instance,
    publish_document,
    publish_instance,
)
from repro.relational.relation import Relation
from repro.xml.columnar import ColumnarDocument, columnar
from repro.xml.interface import get_twig_algorithm
from repro.xml.model import XMLDocument, element
from repro.xml.twig_parser import parse_twig


def library_document():
    tree = element(
        "lib",
        element("shelf",
                element("book", element("title", text="a")),
                element("book", element("title", text="b"))),
        element("shelf",
                element("book", element("title", text="c")),
                element("book", element("title", text="d"))),
    )
    return XMLDocument(tree)


def triangle_instance(n=50, algorithm="generic_join"):
    import random

    rng = random.Random(13)
    edges = sorted({(rng.randrange(n), rng.randrange(n))
                    for _ in range(4 * n)})
    relations = [Relation("R", ("a", "b"), edges),
                 Relation("S", ("b", "c"), edges),
                 Relation("T", ("a", "c"), edges)]
    if algorithm == "xjoin":
        query = MultiModelQuery(relations, name="Q")
        return EncodedInstance.from_query(query, ("a", "b", "c"))
    return EncodedInstance.from_relations(relations, ("a", "b", "c"))


class TestSharedArena:
    def test_round_trip_all_widths(self):
        buffers = {
            "w8": pack([0, 7, 255]),
            "w16": pack([0, 300, 65_535]),
            "w32": pack([0, 70_000, 2 ** 32 - 1]),
            "w64": pack([0, 2 ** 33]),
            "empty": pack([]),
        }
        meta = {"tables": {"x": [1, 2]}, "note": "hello"}
        with SharedArena.publish(buffers, meta) as arena:
            attached = SharedArena.attach(arena.name)
            assert attached.meta == meta
            assert sorted(attached.keys()) == sorted(buffers)
            for key, buf in buffers.items():
                view = attached.buffer(key)
                assert as_list(view) == as_list(buf)
                assert view.format == buf.typecode
            attached.close()
        assert not leaked_segments()

    def test_attacher_never_unlinks(self):
        arena = SharedArena.publish({"k": pack([1, 2, 3])}, None)
        attached = SharedArena.attach(arena.name)
        attached.close()
        attached.unlink()  # non-owner: must be a no-op
        again = SharedArena.attach(arena.name)
        assert as_list(again.buffer("k")) == [1, 2, 3]
        again.close()
        arena.close()
        arena.unlink()
        assert not leaked_segments()


class TestDocumentRoundTrip:
    def test_attached_view_mirrors_columns_and_postings(self):
        document = library_document()
        base = columnar(document)
        arena = publish_document(base)
        try:
            attached_arena, handle, view = attach_document(arena.name)
            assert view.size == base.size
            for column in ("starts", "ends", "levels", "parents",
                           "tag_ids", "path_ids"):
                assert as_list(getattr(view, column)) == \
                    as_list(getattr(base, column)), column
            assert view.values == base.values
            assert view.tags == base.tags
            for tid in range(len(base.tags)):
                assert as_list(view.tag_nids[tid]) == \
                    as_list(base.tag_nids[tid])
                assert as_list(view.tag_starts[tid]) == \
                    as_list(base.tag_starts[tid])
            for pid in range(len(base.paths)):
                assert as_list(view.nids_by_path[pid]) == \
                    as_list(base.nids_by_path[pid])
            node = view.nodes[3]
            assert node.start == base.starts[3]
            assert node.tag == base.tags[base.tag_ids[3]]
            attached_arena.close()
        finally:
            arena.close()
            arena.unlink()
        assert not leaked_segments()

    @pytest.mark.parametrize("algorithm",
                             ["twigstack", "tjfast", "structural"])
    def test_matchers_run_on_attached_handle(self, algorithm):
        document = library_document()
        twig = parse_twig("b=book(/t=title)")
        serial = get_twig_algorithm(algorithm).run(document, twig)
        arena = publish_document(columnar(document))
        try:
            attached_arena, handle, _view = attach_document(arena.name)
            attached = get_twig_algorithm(algorithm).run(handle, twig)
            assert sorted(attached.rows) == sorted(serial.rows)
            attached_arena.close()
        finally:
            arena.close()
            arena.unlink()


class TestInstanceRoundTrip:
    @pytest.mark.parametrize("algorithm",
                             ["generic_join", "leapfrog", "xjoin"])
    def test_kernels_run_on_attached_instance(self, algorithm):
        instance = triangle_instance(50, algorithm)
        serial = get_algorithm(algorithm).run(instance)
        arena = publish_instance(instance, algorithm)
        try:
            attached_arena, attached = attach_instance(arena.name)
            result = get_algorithm(algorithm).run(attached)
            assert sorted(result.rows) == sorted(serial.rows)
            attached_arena.close()
        finally:
            arena.close()
            arena.unlink()
        assert not leaked_segments()


class TestZeroPickling:
    def test_columnar_document_refuses_to_pickle(self):
        view = columnar(library_document())
        assert isinstance(view, ColumnarDocument)
        with pytest.raises(TypeError, match="never pickled"):
            pickle.dumps(view)


def twig_bearing_instance():
    document = library_document()
    twig = parse_twig("b=book(/t=title)")
    relation = Relation("R", ("x", "t"),
                        [(x, t) for x in range(40)
                         for t in ("a", "b", "c", "d")])
    query = MultiModelQuery([relation], [TwigBinding(twig, document)],
                            name="Q")
    return EncodedInstance.from_query(query, ("x", "t", "b"))


class TestTransportRouting:
    def test_transport_error_is_engine_error(self):
        assert issubclass(TransportError, EngineError)

    def test_shm_always_listed(self):
        transports = available_transports()
        assert "shm" in transports and "serial" in transports
        assert default_transport(1) == "serial"
        assert default_transport(4) in ("fork", "shm")

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_twig_bearing_join_raises_transport_error(self, transport):
        instance = twig_bearing_instance()
        executor = ParallelExecutor(2, transport=transport)
        with pytest.raises(TransportError):
            executor.run_join(instance, "xjoin")

    def test_naive_twig_without_fork_raises_transport_error(
            self, monkeypatch):
        monkeypatch.setattr(executor_module, "fork_available",
                            lambda: False)
        document = library_document()
        twig = parse_twig("b=book(/t=title)")
        executor = ParallelExecutor(2, transport="shm")
        with pytest.raises(TransportError):
            executor.run_twig(document, twig, "naive")

    def test_pickle_configured_twig_routes_through_shm(self, monkeypatch):
        # Even with fork gone, a pickle-configured executor must still
        # parallelize twig matches (satellite: pickle routes via shm).
        monkeypatch.setattr(executor_module, "fork_available",
                            lambda: False)
        document = library_document()
        twig = parse_twig("b=book(/t=title)")
        serial = get_twig_algorithm("twigstack").run(document, twig)
        executor = ParallelExecutor(2, transport="pickle")
        parallel = executor.run_twig(document, twig, "twigstack")
        assert sorted(parallel.rows) == sorted(serial.rows)
        assert not leaked_segments()


class TestSpawnPoolSmoke:
    def test_two_worker_shm_twig_parity(self):
        document = library_document()
        twig = parse_twig("b=book(/t=title)")
        serial = get_twig_algorithm("twigstack").run(document, twig)
        executor = ParallelExecutor(2, transport="shm")
        parallel = executor.run_twig(document, twig, "twigstack")
        assert sorted(parallel.rows) == sorted(serial.rows)
        assert not leaked_segments()

    def test_two_worker_shm_join_parity(self):
        instance = triangle_instance(60)
        serial = get_algorithm("leapfrog").run(instance)
        executor = ParallelExecutor(2, transport="shm")
        parallel = executor.run_join(instance, "leapfrog")
        assert sorted(parallel.rows) == sorted(serial.rows)
        assert not leaked_segments()
