"""Layout helpers and batch kernels: widths, widening, galloping."""

import random
from array import array
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.kernels import gallop, intersect_many
from repro.buffers.layout import (
    as_list,
    delete,
    insert_code,
    is_buffer,
    list_backend,
    make,
    pack,
    remove_code,
    set_at,
    shift_from,
    shift_tail,
    splice,
    typecode_for,
)


class TestTypecodes:
    def test_unsigned_width_boundaries(self):
        assert typecode_for(0) == "B"
        assert typecode_for(255) == "B"
        assert typecode_for(256) == "H"
        assert typecode_for(65535) == "H"
        assert typecode_for(65536) == "I"
        assert typecode_for(2 ** 32 - 1) == "I"
        assert typecode_for(2 ** 32) == "Q"

    def test_signed_ladder_for_negative_lo(self):
        assert typecode_for(10, -1) == "b"
        assert typecode_for(127, -128) == "b"
        assert typecode_for(128, -1) == "h"
        assert typecode_for(2 ** 31, -1) == "q"

    def test_overflow_rejected(self):
        with pytest.raises(OverflowError):
            typecode_for(2 ** 64)

    def test_pack_picks_narrowest(self):
        for hi, tc in ((200, "B"), (300, "H"), (70_000, "I"),
                       (2 ** 33, "Q")):
            buf = pack([0, 1, hi])
            assert isinstance(buf, array) and buf.typecode == tc
        assert pack([5, -1, 3]).typecode == "b"

    def test_pack_empty_respects_bounds(self):
        assert pack([]).typecode == "B"
        assert pack([], hi=70_000).typecode == "I"

    def test_list_backend_forces_lists(self):
        with list_backend():
            assert pack([1, 2, 3]) == [1, 2, 3]
            assert make("H") == []
            assert not is_buffer(pack([1]))
        assert is_buffer(pack([1, 2, 3]))
        assert is_buffer(make("H"))


class TestWidening:
    @pytest.mark.parametrize("start_hi,grow_to,tc_before,tc_after", [
        (200, 300, "B", "H"),           # 8 -> 16 bit
        (60_000, 70_000, "H", "I"),     # 16 -> 32 bit
        (2 ** 31, 2 ** 33, "I", "Q"),   # 32 -> 64 bit
    ])
    def test_splice_widens_across_boundary(self, start_hi, grow_to,
                                           tc_before, tc_after):
        buf = pack([1, 2, start_hi])
        assert buf.typecode == tc_before
        out = splice(buf, 3, 3, [grow_to])
        assert out.typecode == tc_after
        assert as_list(out) == [1, 2, start_hi, grow_to]
        # In-width splices mutate in place (same object back).
        again = splice(out, 0, 1, [0])
        assert again is out

    def test_insert_code_and_set_at_widen(self):
        buf = pack([3, 9])
        wide = insert_code(buf, 400)
        assert wide.typecode == "H" and as_list(wide) == [3, 9, 400]
        wider = set_at(wide, 0, 100_000)
        assert wider.typecode == "I" and wider[0] == 100_000

    def test_shift_helpers(self):
        buf = pack([10, 20, 30, 40])
        buf = shift_tail(buf, 2, +5)
        assert as_list(buf) == [10, 20, 35, 45]
        buf = shift_from(buf, 0, 35, -5)
        assert as_list(buf) == [10, 20, 30, 40]
        buf = shift_tail(buf, 3, 300)  # widens B -> H
        assert buf.typecode == "H" and buf[3] == 340

    def test_delete_and_remove(self):
        buf = pack([1, 2, 3, 4, 5])
        buf = delete(buf, 1, 3)
        assert as_list(buf) == [1, 4, 5]
        buf = remove_code(buf, 4)
        assert as_list(buf) == [1, 5]

    def test_helpers_accept_lists(self):
        buf = [1, 2, 3]
        assert splice(buf, 1, 2, [7, 8]) == [1, 7, 8, 3]
        buf = [1, 3, 5]
        assert insert_code(buf, 4) == [1, 3, 4, 5]
        assert remove_code(buf, 3) == [1, 4, 5]
        assert shift_tail([1, 2], 0, 10) == [11, 12]
        assert shift_from([5, 1, 7], 0, 5, 2) == [7, 1, 9]
        assert set_at([1, 2], 1, 9) == [1, 9]


class TestGallop:
    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=60),
           st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=60))
    @settings(max_examples=200, deadline=None)
    def test_matches_bisect_from_cursor(self, values, code, cursor):
        keys = sorted(set(values))
        cursor = min(cursor, len(keys))
        assert gallop(keys, code, cursor) == \
            bisect_left(keys, code, cursor, len(keys))

    def test_works_over_all_representations(self):
        data = [2, 4, 8, 16, 32]
        packed = pack(data)
        view = memoryview(packed)
        for seq in (data, packed, view):
            assert gallop(seq, 9) == 3
            assert gallop(seq, 2) == 0
            assert gallop(seq, 33) == 5


class TestIntersectMany:
    @given(st.lists(
        st.lists(st.integers(min_value=0, max_value=120), max_size=50),
        min_size=1, max_size=5))
    @settings(max_examples=200, deadline=None)
    def test_matches_set_intersection(self, families):
        sorted_inputs = [sorted(set(family)) for family in families]
        expected = sorted(set.intersection(*map(set, sorted_inputs)))
        codes, probes = intersect_many([pack(s, hi=120)
                                        for s in sorted_inputs])
        assert as_list(codes) == expected
        assert probes >= 0

    def test_two_and_three_way_paths_agree(self):
        rng = random.Random(11)
        a = sorted(rng.sample(range(3000), 400))
        b = sorted(rng.sample(range(3000), 350))
        c = sorted(rng.sample(range(3000), 300))
        two, _ = intersect_many([pack(a), pack(b)])
        assert as_list(two) == sorted(set(a) & set(b))
        three, _ = intersect_many([pack(a), pack(b), pack(c)])
        assert as_list(three) == sorted(set(a) & set(b) & set(c))

    def test_representation_of_result_follows_inputs(self):
        codes, _ = intersect_many([pack([1, 2, 3]), pack([2, 3, 4])])
        assert isinstance(codes, array)
        codes, _ = intersect_many([[1, 2, 3], [2, 3]])
        assert isinstance(codes, list)

    def test_empty_input(self):
        codes, probes = intersect_many([pack([]), pack([1, 2])])
        assert as_list(codes) == [] and probes == 0
