"""File-backed mmap arenas: layout, lifecycle, and error routing.

The arena-layer guarantees of the larger-than-RAM tentpole: values of
every typecode width round-trip bit-exactly through a
:class:`~repro.buffers.mmapfile.FileArena`, the streamed
:class:`~repro.buffers.mmapfile.ArenaWriter` (bounded tails, spill
files, ``set_at`` backpatching, CSR concatenation) produces the same
bytes as the in-memory publish, broken attachments surface as
:class:`~repro.errors.TransportError` (never a raw ``OSError``), and
nothing with the ``repro-arena-`` prefix survives a clean run. The
shared-memory satellites ride along: ``SharedArena.attach`` error
routing and the thread-safe resource-tracker shim.
"""

from __future__ import annotations

import threading
from array import array
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.buffers.mmapfile import (
    ArenaWriter,
    FileArena,
    arena_temp_path,
    leaked_arena_files,
)
from repro.buffers.shm import SharedArena
from repro.errors import TransportError

#: (typecode, values) pairs hitting both ends of each storage width.
BOUNDARY_BUFFERS = [
    ("b", [-128, -1, 0, 1, 127]),
    ("B", [0, 1, 254, 255]),
    ("h", [-32768, -1, 0, 32767]),
    ("H", [0, 65535]),
    ("i", [-2**31, -1, 0, 2**31 - 1]),
    ("I", [0, 2**32 - 1]),
    ("q", [-2**63, -1, 0, 2**63 - 1]),
    ("Q", [0, 2**64 - 1]),
    ("d", [0.0, -1.5, 2.25e300]),
]


class TestTypecodeBoundaries:
    def test_all_widths_round_trip(self):
        buffers = {f"col_{tc}": array(tc, values)
                   for tc, values in BOUNDARY_BUFFERS}
        with FileArena.publish(buffers, {"kind": "test"}) as arena:
            assert arena.meta == {"kind": "test"}
            assert sorted(arena.keys()) == sorted(buffers)
            for tc, values in BOUNDARY_BUFFERS:
                view = arena.buffer(f"col_{tc}")
                assert view.format == tc
                assert list(view) == values
        assert not leaked_arena_files()

    def test_streamed_columns_match_publish(self):
        """ArenaWriter spill path == in-memory publish, byte for byte."""
        values = list(range(-50, 50))
        direct = FileArena.publish({"c": array("i", values)})
        writer = ArenaWriter(chunk_items=7)  # force many partial spills
        column = writer.column("c", "i")
        column.extend(values)
        streamed = writer.finish(None)
        try:
            assert list(streamed.buffer("c")) == list(direct.buffer("c"))
        finally:
            for arena in (direct, streamed):
                arena.close()
                arena.unlink()
        assert not leaked_arena_files()


class TestColumnWriter:
    def test_partial_final_tail(self):
        """A column whose length is not a multiple of the chunk."""
        writer = ArenaWriter(chunk_items=8)
        column = writer.column("c", "H")
        for value in range(21):  # 2 full spills + a 5-item tail
            column.append(value)
        assert len(column) == 21
        with writer.finish(None) as arena:
            assert list(arena.buffer("c")) == list(range(21))
        assert not leaked_arena_files()

    def test_set_at_backpatches_tail_and_flushed(self):
        writer = ArenaWriter(chunk_items=4)
        column = writer.column("c", "I")
        for value in range(10):
            column.append(value)
        column.set_at(1, 101)   # flushed region -> pwrite
        column.set_at(9, 109)   # in-memory tail -> mutation
        with writer.finish(None) as arena:
            got = list(arena.buffer("c"))
        assert got[1] == 101 and got[9] == 109
        assert got[0] == 0 and got[8] == 8

    def test_snapshot_reads_everything_appended(self):
        writer = ArenaWriter(chunk_items=4)
        column = writer.column("c", "I", register=False)
        column.extend(range(11))
        with column.snapshot() as view:
            assert list(view) == list(range(11))
        writer.abort()
        assert not leaked_arena_files()

    def test_concat_streams_buckets_in_order(self):
        writer = ArenaWriter(chunk_items=4)
        buckets = []
        for base in (0, 100, 200):
            bucket = writer.column(f"bucket{base}", "I", register=False)
            bucket.extend(range(base, base + 6))
            buckets.append(bucket)
        writer.concat("csr", "I", buckets)
        with writer.finish(None) as arena:
            expected = [*range(0, 6), *range(100, 106), *range(200, 206)]
            assert list(arena.buffer("csr")) == expected

    def test_duplicate_buffer_name_rejected(self):
        writer = ArenaWriter()
        writer.column("c", "I")
        with pytest.raises(ValueError):
            writer.add_buffer("c", array("I", [1]))
        writer.abort()
        assert not leaked_arena_files()


class TestErrorRouting:
    def test_vanished_file_raises_transport_error(self):
        missing = arena_temp_path()
        with pytest.raises(TransportError, match="vanished"):
            FileArena.attach(missing)
        assert not leaked_arena_files()

    def test_non_arena_file_raises_transport_error(self, tmp_path):
        bogus = tmp_path / "not-an-arena.bin"
        bogus.write_bytes(b"\xff" * 64)
        with pytest.raises(TransportError, match="not a readable arena"):
            FileArena.attach(str(bogus))

    def test_buffer_after_close_raises_transport_error(self):
        arena = FileArena.publish({"c": array("I", [1, 2, 3])})
        path = arena.path
        arena.close()
        with pytest.raises(TransportError, match="closed"):
            arena.buffer("c")
        reattached = FileArena.attach(path, owner=True)
        try:
            assert list(reattached.buffer("c")) == [1, 2, 3]
        finally:
            reattached.close()
            reattached.unlink()
        assert not leaked_arena_files()

    def test_shm_attach_unknown_name_raises_transport_error(self):
        with pytest.raises(TransportError, match="vanished"):
            SharedArena.attach("repro-buf-never-published")


class TestConcurrentShmAttach:
    def test_parallel_attaches_do_not_race_the_tracker(self):
        """Regression: the old attach shim swapped the *global*
        ``resource_tracker.register`` in and out per attach, so
        concurrent attaches could restore a stale reference (leaving
        the skip permanently installed) or unregister a publisher's
        create. The permanent thread-local shim must survive a
        thread-pool hammering attaches while publishes proceed."""
        from multiprocessing import resource_tracker

        arena = SharedArena.publish({"c": array("I", list(range(64)))},
                                    {"kind": "test"})
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def hammer():
            try:
                barrier.wait(timeout=10)
                for _ in range(25):
                    attached = SharedArena.attach(arena.name)
                    assert list(attached.buffer("c")) == list(range(64))
                    attached.close()
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        def publish_churn():
            try:
                barrier.wait(timeout=10)
                for _ in range(25):
                    other = SharedArena.publish({"x": array("B", [1])})
                    other.close()
                    other.unlink()
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [pool.submit(hammer) for _ in range(6)]
                futures += [pool.submit(publish_churn) for _ in range(2)]
                for future in futures:
                    future.result(timeout=60)
        finally:
            arena.close()
            arena.unlink()
        assert not errors, errors
        # The shim stayed installed (stable binding across attaches)
        # and a vanished-name attach still routes as TransportError —
        # the whole machinery survived the hammering intact.
        register = resource_tracker.register
        with pytest.raises(TransportError):
            SharedArena.attach(arena.name)  # unlinked above
        assert resource_tracker.register is register
