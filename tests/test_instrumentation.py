"""Tests for the shared execution counters."""

import time

from repro.instrumentation import NULL_STATS, JoinStats, ensure_stats


class TestJoinStats:
    def test_record_stage_tracks_max(self):
        stats = JoinStats()
        stats.record_stage("one", 5)
        stats.record_stage("two", 3)
        stats.record_stage("three", 9)
        assert stats.max_intermediate == 9
        assert stats.total_intermediate == 17
        assert stats.stage_sizes() == [5, 3, 9]

    def test_counters(self):
        stats = JoinStats()
        stats.count_comparisons(3)
        stats.count_seeks()
        stats.count_emitted(2)
        stats.count_filtered()
        assert stats.comparisons == 3
        assert stats.seeks == 1
        assert stats.emitted == 2
        assert stats.filtered == 1

    def test_timer_accumulates(self):
        stats = JoinStats()
        stats.start_timer()
        time.sleep(0.002)
        stats.stop_timer()
        first = stats.wall_time
        assert first > 0
        stats.start_timer()
        stats.stop_timer()
        assert stats.wall_time >= first

    def test_stop_without_start_is_noop(self):
        stats = JoinStats()
        stats.stop_timer()
        assert stats.wall_time == 0.0

    def test_summary_keys(self):
        summary = JoinStats().summary()
        assert set(summary) == {
            "max_intermediate", "total_intermediate", "comparisons",
            "seeks", "emitted", "filtered", "wall_time"}

    def test_repr(self):
        assert "max_intermediate=0" in repr(JoinStats())


class TestNullStats:
    def test_all_mutators_are_noops(self):
        NULL_STATS.record_stage("x", 100)
        NULL_STATS.count_comparisons(5)
        NULL_STATS.count_seeks(5)
        NULL_STATS.count_emitted(5)
        NULL_STATS.count_filtered(5)
        NULL_STATS.start_timer()
        NULL_STATS.stop_timer()
        assert NULL_STATS.max_intermediate == 0
        assert NULL_STATS.comparisons == 0
        assert NULL_STATS.wall_time == 0.0

    def test_ensure_stats(self):
        assert ensure_stats(None) is NULL_STATS
        real = JoinStats()
        assert ensure_stats(real) is real
