"""Tests for the exact simplex solver, cross-checked against scipy."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.core.lp import minimise_lp, solve_lp
from repro.errors import LPError


class TestSolveLP:
    def test_simple_maximisation(self):
        # max x+y s.t. x<=2, y<=3
        solution = solve_lp([1, 1], [[1, 0], [0, 1]], [2, 3])
        assert solution.objective == 5
        assert solution.x == (2, 3)

    def test_shared_constraint(self):
        # max x+y s.t. x+y<=1 -> 1
        solution = solve_lp([1, 1], [[1, 1]], [1])
        assert solution.objective == 1

    def test_fractional_optimum_is_exact(self):
        # max x+y+z s.t. x+y<=1, y+z<=1, x+z<=1 -> 3/2 (triangle packing)
        solution = solve_lp([1, 1, 1],
                            [[1, 1, 0], [0, 1, 1], [1, 0, 1]], [1, 1, 1])
        assert solution.objective == Fraction(3, 2)
        assert all(value == Fraction(1, 2) for value in solution.x)

    def test_unbounded_raises(self):
        with pytest.raises(LPError, match="unbounded"):
            solve_lp([1], [[-1]], [0])

    def test_infeasible_raises(self):
        # x <= -1 with x >= 0 is infeasible.
        with pytest.raises(LPError, match="infeasible"):
            solve_lp([1], [[1], [-1]], [-2, 1])

    def test_negative_rhs_feasible(self):
        # x >= 2 (as -x <= -2), x <= 5, max x -> 5
        solution = solve_lp([1], [[-1], [1]], [-2, 5])
        assert solution.objective == 5

    def test_degenerate_zero_objective(self):
        solution = solve_lp([0, 0], [[1, 1]], [1])
        assert solution.objective == 0

    def test_dimension_mismatch_raises(self):
        with pytest.raises(LPError):
            solve_lp([1, 1], [[1]], [1])
        with pytest.raises(LPError):
            solve_lp([1], [[1]], [1, 2])

    def test_as_floats(self):
        solution = solve_lp([1], [[2]], [1])
        assert solution.as_floats() == (0.5,)


class TestMinimiseLP:
    def test_simple_cover(self):
        # min x+y s.t. x>=1, y>=2 -> 3
        solution = minimise_lp([1, 1], [[1, 0], [0, 1]], [1, 2])
        assert solution.objective == 3

    def test_triangle_cover(self):
        # min wR+wS+wT covering a,b,c pairwise -> 3/2
        solution = minimise_lp(
            [1, 1, 1], [[1, 0, 1], [1, 1, 0], [0, 1, 1]], [1, 1, 1])
        assert solution.objective == Fraction(3, 2)

    def test_weighted_cover_prefers_cheap_edge(self):
        # Cover {a}: edges E1 (cost 5) and E2 (cost 1) both cover a.
        solution = minimise_lp([5, 1], [[1, 1]], [1])
        assert solution.objective == 1
        assert solution.x == (0, 1)


@st.composite
def random_lp(draw):
    """Small random LPs with bounded feasible region (x_i <= cap)."""
    n = draw(st.integers(1, 4))
    m = draw(st.integers(1, 4))
    c = draw(st.lists(st.integers(-5, 5), min_size=n, max_size=n))
    rows = draw(st.lists(
        st.lists(st.integers(-3, 3), min_size=n, max_size=n),
        min_size=m, max_size=m))
    b = draw(st.lists(st.integers(0, 10), min_size=m, max_size=m))
    return c, rows, b


@settings(max_examples=60, deadline=None)
@given(random_lp())
def test_matches_scipy_on_random_bounded_lps(problem):
    c, rows, b = problem
    n = len(c)
    # Add x_i <= 6 caps so the LP is always bounded and feasible (b >= 0).
    a_ub = rows + [[1 if j == i else 0 for j in range(n)] for i in range(n)]
    b_ub = b + [6] * n
    ours = solve_lp(c, a_ub, b_ub)
    ref = linprog(c=[-v for v in c], A_ub=np.array(a_ub, dtype=float),
                  b_ub=np.array(b_ub, dtype=float), bounds=[(0, None)] * n,
                  method="highs")
    assert ref.success
    assert float(ours.objective) == pytest.approx(-ref.fun, abs=1e-7)
    # Our solution must itself be feasible.
    for row, bound in zip(a_ub, b_ub):
        assert sum(Fraction(a) * x for a, x in zip(row, ours.x)) <= bound
    assert all(x >= 0 for x in ours.x)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 4), st.data())
def test_lp_duality_on_random_covers(k, data):
    """Strong duality: random cover LP optimum == its packing dual."""
    edges = data.draw(st.lists(
        st.sets(st.integers(0, k - 1), min_size=1, max_size=k),
        min_size=1, max_size=5))
    vertices = sorted(set().union(*edges))
    # primal: min sum w_e s.t. each vertex covered
    a_lb = [[1 if v in e else 0 for e in edges] for v in vertices]
    primal = minimise_lp([1] * len(edges), a_lb, [1] * len(vertices))
    # dual: max sum y_v s.t. per edge sum <= 1
    a_ub = [[1 if v in e else 0 for v in vertices] for e in edges]
    dual = solve_lp([1] * len(vertices), a_ub, [1] * len(edges))
    assert primal.objective == dual.objective
