"""Tests for MultiModelQuery: the combined hypergraph and its bounds."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.data.random_instances import random_multimodel_instance
from repro.data.synthetic import example34_instance, figure2_twig, worst_case_document
from repro.errors import QueryError
from repro.relational.relation import Relation
from repro.xml.model import XMLDocument, element
from repro.xml.twig_parser import parse_twig


@pytest.fixture
def instance():
    return example34_instance(3)


class TestAttributes:
    def test_relational_attributes_first(self, instance):
        assert instance.query.attributes == (
            "A", "B", "C", "D", "E", "F", "G", "H")

    def test_shared_attribute_not_duplicated(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        doc = XMLDocument(element("r", element("a", text="1")))
        query = MultiModelQuery([r], [TwigBinding(parse_twig("a"), doc)])
        assert query.attributes == ("a", "b")

    def test_binding_lookup(self, instance):
        assert instance.query.binding_for("X").twig is instance.twig
        with pytest.raises(QueryError):
            instance.query.binding_for("nope")


class TestHypergraph:
    def test_edges_are_relations_plus_paths(self, instance):
        graph = instance.query.hypergraph()
        names = {edge.name for edge in graph.edges}
        assert "R1" in names and "R2" in names
        assert len(names) == 2 + 5

    def test_cardinalities_from_instance(self, instance):
        graph = instance.query.hypergraph()
        assert graph.edge("R1").cardinality == 3
        path_edges = [e for e in graph.edges
                      if e.name not in ("R1", "R2")]
        assert all(e.cardinality == 3 for e in path_edges)

    def test_without_cardinalities(self, instance):
        graph = instance.query.hypergraph(with_cardinalities=False)
        assert all(e.cardinality is None for e in graph.edges)


class TestBounds:
    def test_symbolic_exponent(self, instance):
        assert instance.query.symbolic_exponent() == 2

    def test_dual_equals_primal(self, instance):
        assert instance.query.dual_packing().total == \
            instance.query.symbolic_exponent()

    def test_instance_bound_value(self, instance):
        # All inputs have cardinality 3; exponent 2 -> bound 9.
        assert instance.query.size_bound().bound_ceiling == 9

    def test_bound_dominates_result(self, instance):
        assert len(instance.query.naive_join()) <= \
            instance.query.size_bound().bound_ceiling

    def test_example33_fractional_bound(self):
        from repro.data.synthetic import example33_instance
        query = example33_instance(2).query
        assert query.symbolic_exponent() == Fraction(7, 2)
        # cardinalities all 2 -> bound = 2^{7/2} ≈ 11.31 -> ceiling 12
        assert query.size_bound().bound_ceiling == 12


class TestReferenceEvaluation:
    def test_twig_relations(self, instance):
        (answer,) = instance.query.twig_relations()
        assert len(answer) == 3 ** 5

    def test_path_relations(self, instance):
        paths = instance.query.path_relations()
        assert [p.schema.attributes for p in paths] == [
            ("A", "B"), ("A", "D"), ("C", "E"), ("F", "H"), ("G",)]
        assert all(len(p) == 3 for p in paths)

    def test_naive_join_schema(self, instance):
        out = instance.query.naive_join()
        assert out.schema.attributes == instance.query.attributes

    def test_repr(self, instance):
        assert "2 relations, 1 twigs" in repr(instance.query)


class TestMultipleTwigs:
    def make_query(self):
        doc_a = XMLDocument(element("r", element("x", text="1"),
                                    element("x", text="2")))
        doc_b = XMLDocument(element("s", element("y", text="2"),
                                    element("y", text="3")))
        r = Relation("R", ("x", "y"), [(1, 2), (2, 2), (2, 3)])
        return MultiModelQuery(
            [r],
            [TwigBinding(parse_twig("x", name="XA"), doc_a),
             TwigBinding(parse_twig("y", name="XB"), doc_b)])

    def test_attributes(self):
        assert self.make_query().attributes == ("x", "y")

    def test_naive_join_across_two_documents(self):
        out = self.make_query().naive_join()
        assert set(out) == {(1, 2), (2, 2), (2, 3)}

    def test_xjoin_and_baseline_agree(self):
        from repro.core.baseline import baseline_join
        from repro.core.xjoin import xjoin
        query = self.make_query()
        naive = query.naive_join()
        assert xjoin(query) == naive
        assert baseline_join(query) == naive

    def test_duplicate_twig_names_rejected(self):
        doc = XMLDocument(element("r", element("x", text="1")))
        with pytest.raises(QueryError):
            MultiModelQuery(
                [], [TwigBinding(parse_twig("x", name="X"), doc),
                     TwigBinding(parse_twig("x", name="X"), doc)])


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_bound_dominates_naive_result_on_random_instances(seed):
    """Lemma 3.1 end-to-end: |Q(D)| <= multi-model AGM bound."""
    query = random_multimodel_instance(seed)
    assert len(query.naive_join()) <= query.size_bound().bound_ceiling
