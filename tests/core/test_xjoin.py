"""Tests for XJoin (Algorithm 1) and the baseline — the paper's core claims.

Checked here:
* XJoin == baseline == naive oracle on the paper's instances and on random
  multi-model instances (correctness);
* Lemma 3.5: XJoin's max intermediate size never exceeds the combined AGM
  bound, for any expansion order and any mode;
* Example 3.4 / Figure 3: the baseline's intermediates reach n^5 while
  XJoin's stay within n^2.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baseline import baseline_join, relational_subquery, twig_subquery
from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.xjoin import xjoin
from repro.data.random_instances import random_multimodel_instance
from repro.data.scenarios import bookstore_instance, figure1_query
from repro.data.synthetic import example33_instance, example34_instance
from repro.errors import PlanError, QueryError
from repro.instrumentation import JoinStats
from repro.relational.relation import Relation
from repro.xml.model import XMLDocument, element
from repro.xml.twig_parser import parse_twig


class TestFigure1:
    def test_xjoin_answer(self):
        query = figure1_query()
        out = xjoin(query).project(["userID", "ISBN", "price"])
        assert set(out) == {("jack", "978-3-16-1", 30),
                            ("tom", "634-3-12-2", 20)}

    def test_baseline_agrees(self):
        query = figure1_query()
        assert baseline_join(query) == xjoin(query)

    def test_naive_agrees(self):
        query = figure1_query()
        assert query.naive_join() == xjoin(query)

    def test_dangling_relational_orders_dropped(self):
        query = figure1_query()
        out = xjoin(query)
        assert "bob" not in {row[out.schema.index("userID")] for row in out}


class TestExamplePaperInstances:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_example34_result_size_is_n(self, n):
        instance = example34_instance(n)
        assert len(xjoin(instance.query)) == n

    @pytest.mark.parametrize("n", [2, 3])
    def test_example34_all_evaluators_agree(self, n):
        instance = example34_instance(n)
        naive = instance.query.naive_join()
        assert xjoin(instance.query) == naive
        assert baseline_join(instance.query) == naive

    @pytest.mark.parametrize("n", [2, 3])
    def test_example33_all_evaluators_agree(self, n):
        instance = example33_instance(n)
        naive = instance.query.naive_join()
        assert xjoin(instance.query) == naive
        assert baseline_join(instance.query) == naive

    def test_twig_only_matches_are_n5(self):
        instance = example34_instance(2)
        twig_only = MultiModelQuery(
            [], [TwigBinding(instance.twig, instance.document)], name="Q2")
        assert len(xjoin(twig_only)) == 2 ** 5

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_lemma35_on_example34(self, n):
        """XJoin intermediates <= the combined bound (here n^2);
        the baseline's reach n^5."""
        instance = example34_instance(n)
        bound = instance.query.size_bound().bound_ceiling
        xstats = JoinStats()
        xjoin(instance.query, stats=xstats)
        assert xstats.max_intermediate <= bound
        bstats = JoinStats()
        baseline_join(instance.query, stats=bstats)
        assert bstats.max_intermediate >= n ** 5

    def test_figure3_shape_baseline_worse(self):
        """Both metrics of Figure 3: time and intermediate ratio > 1."""
        instance = example34_instance(6)
        xstats, bstats = JoinStats(), JoinStats()
        xjoin(instance.query, stats=xstats)
        baseline_join(instance.query, stats=bstats)
        assert bstats.max_intermediate > 10 * xstats.max_intermediate
        assert bstats.wall_time > xstats.wall_time


class TestXJoinModes:
    def make_instance(self):
        return example34_instance(3)

    def test_explicit_order(self):
        instance = self.make_instance()
        order = tuple(reversed(instance.query.attributes))
        assert xjoin(instance.query, order) == xjoin(instance.query)

    def test_policy_orders(self):
        instance = self.make_instance()
        reference = xjoin(instance.query)
        for policy in ("appearance", "domain", "connected"):
            assert xjoin(instance.query, policy) == reference

    def test_bad_order_raises(self):
        instance = self.make_instance()
        with pytest.raises(PlanError):
            xjoin(instance.query, ("A", "B"))
        with pytest.raises(PlanError):
            xjoin(instance.query, "no_such_policy")

    def test_ad_prefilter_same_result(self):
        instance = self.make_instance()
        assert xjoin(instance.query, ad_prefilter=True) == \
            xjoin(instance.query)

    def test_partial_validation_same_result(self):
        instance = self.make_instance()
        assert xjoin(instance.query, partial_validation=True) == \
            xjoin(instance.query)

    def test_all_modes_together(self):
        instance = self.make_instance()
        assert xjoin(instance.query, "connected", ad_prefilter=True,
                     partial_validation=True) == xjoin(instance.query)

    def test_skipping_validation_relaxes(self):
        """Without the final structure filter the result is a superset."""
        tree = element(
            "r",
            element("x", element("y", text="1")),
            element("x", element("y", text="2")),
        )
        doc = XMLDocument(tree)
        # Twig r(//x(/y)) decomposes into paths (r) and (x, y); requiring
        # x below r always holds, so craft a case via two twig branches.
        twig = parse_twig("x(/y)")
        query = MultiModelQuery([], [TwigBinding(twig, doc)])
        strict = xjoin(query)
        relaxed = xjoin(query, validate_structure=False)
        assert strict.rows <= relaxed.rows

    def test_validation_actually_filters(self):
        """A-D edge between branches: the value join alone overcounts."""
        # Document: two 'a' nodes; only one has a 'b' descendant.
        root = element("r")
        a1 = element("a", element("b", text="10"), text="1")
        a2 = element("a", text="2")
        root.append(a1)
        root.append(a2)
        doc = XMLDocument(root)
        twig = parse_twig("a(//b)")
        query = MultiModelQuery([], [TwigBinding(twig, doc)])
        strict = xjoin(query)
        relaxed = xjoin(query, validate_structure=False)
        # relaxed pairs a=2 with b=10 (cartesian of singleton paths).
        assert len(relaxed) == 2
        assert len(strict) == 1
        assert set(strict) == {(1, 10)}


class TestQueryValidation:
    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            MultiModelQuery()

    def test_duplicate_input_names_rejected(self):
        r = Relation("R", ("a",), [(1,)])
        with pytest.raises(QueryError):
            MultiModelQuery([r, r.with_name("R")])

    def test_relational_only_query(self):
        r = Relation("R", ("a", "b"), [(1, 2), (2, 3)])
        s = Relation("S", ("b", "c"), [(2, 4)])
        query = MultiModelQuery([r, s])
        assert set(xjoin(query)) == {(1, 2, 4)}
        assert baseline_join(query) == xjoin(query)

    def test_twig_only_query(self):
        doc = XMLDocument(element("r", element("x", text="7")))
        query = MultiModelQuery([], [TwigBinding(parse_twig("x"), doc)])
        assert set(xjoin(query)) == {(7,)}
        assert baseline_join(query) == xjoin(query)

    def test_empty_relation_empty_result(self):
        r = Relation("R", ("a",))
        doc = XMLDocument(element("r", element("a", text="1")))
        # Note: relational attribute 'a' joins with twig node 'a'.
        query = MultiModelQuery(
            [r], [TwigBinding(parse_twig("a"), doc)])
        assert len(xjoin(query)) == 0
        assert len(baseline_join(query)) == 0

    def test_disconnected_models_cartesian(self):
        r = Relation("R", ("u",), [(1,), (2,)])
        doc = XMLDocument(element("r", element("x", text="5")))
        query = MultiModelQuery([r], [TwigBinding(parse_twig("x"), doc)])
        assert len(xjoin(query)) == 2
        assert baseline_join(query) == xjoin(query)


class TestBaselinePieces:
    def test_relational_subquery(self):
        instance = example33_instance(3)
        q1 = relational_subquery(instance.query)
        assert len(q1) == 9  # R1(B,D) x R2(F,G,H) share nothing: 3*3

    def test_twig_subquery_size(self):
        instance = example33_instance(2)
        q2 = twig_subquery(instance.query)
        assert len(q2) == 2 ** 5

    def test_left_deep_plan_policy(self):
        instance = example33_instance(2)
        assert baseline_join(instance.query, plan="left_deep") == \
            baseline_join(instance.query)

    def test_unknown_plan_policy_raises(self):
        instance = example33_instance(2)
        with pytest.raises(ValueError):
            baseline_join(instance.query, plan="zigzag")


class TestBookstore:
    def test_scaled_instance_consistency(self):
        query = bookstore_instance(30, 10, seed=3)
        naive = query.naive_join()
        assert xjoin(query) == naive
        assert baseline_join(query) == naive

    def test_match_fraction_zero_empty_result(self):
        query = bookstore_instance(10, 5, match_fraction=0.0, seed=1)
        assert len(xjoin(query)) == 0


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000))
def test_xjoin_baseline_naive_agree_on_random_instances(seed):
    """The headline correctness property on random multi-model queries."""
    query = random_multimodel_instance(seed)
    naive = query.naive_join()
    assert xjoin(query) == naive
    assert baseline_join(query) == naive


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_xjoin_modes_agree_on_random_instances(seed):
    query = random_multimodel_instance(seed)
    reference = xjoin(query)
    assert xjoin(query, "domain", ad_prefilter=True) == reference
    assert xjoin(query, "connected", partial_validation=True) == reference


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_lemma35_on_random_instances(seed):
    """Lemma 3.5: intermediates <= AGM bound of the combined hypergraph,
    at every stage, for every order policy."""
    query = random_multimodel_instance(seed)
    bound = query.size_bound().bound_ceiling
    for policy in ("appearance", "domain", "connected"):
        stats = JoinStats()
        xjoin(query, policy, stats=stats)
        assert stats.max_intermediate <= bound, (
            f"stage sizes {stats.stage_sizes()} exceed bound {bound} "
            f"under policy {policy}")
