"""Tests for the twig decomposition (Figure 2's three steps)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import (
    decompose,
    iter_path_chains,
    materialize_path_relation,
    path_relation_cardinality,
    root_leaf_paths,
    subtwig_root_nodes,
)
from repro.data.random_instances import random_twig
from repro.data.synthetic import figure2_twig, worst_case_document
from repro.xml.generator import random_document
from repro.xml.model import XMLDocument, element
from repro.xml.navigation import match_relation
from repro.xml.twig import TwigNode, TwigQuery
from repro.xml.twig_parser import parse_twig


class TestFigure2:
    """The decomposition must reproduce the paper's example verbatim."""

    def test_subtwig_roots(self):
        roots = subtwig_root_nodes(figure2_twig())
        assert [r.name for r in roots] == ["A", "C", "F", "G"]

    def test_path_relations_match_paper(self):
        decomposition = decompose(figure2_twig())
        schemas = [p.attributes for p in decomposition.paths]
        assert schemas == [("A", "B"), ("A", "D"), ("C", "E"),
                           ("F", "H"), ("G",)]

    def test_five_paths(self):
        assert len(decompose(figure2_twig()).paths) == 5

    def test_path_for_attribute(self):
        decomposition = decompose(figure2_twig())
        assert [p.attributes for p in
                decomposition.path_for_attribute("A")] == [
            ("A", "B"), ("A", "D")]


class TestDecompositionStructure:
    def test_pc_only_twig_single_subtwig(self):
        twig = parse_twig("a(/b(/c), /d)")
        assert len(subtwig_root_nodes(twig)) == 1
        schemas = [p.attributes for p in decompose(twig).paths]
        assert schemas == [("a", "b", "c"), ("a", "d")]

    def test_ad_only_twig_singleton_paths(self):
        twig = parse_twig("a(//b, //c)")
        schemas = [p.attributes for p in decompose(twig).paths]
        assert schemas == [("a",), ("b",), ("c",)]

    def test_single_node(self):
        twig = parse_twig("a")
        assert [p.attributes for p in decompose(twig).paths] == [("a",)]

    def test_root_leaf_paths_branching(self):
        root = TwigNode("a")
        b = root.child("b")
        b.child("c")
        b.child("d")
        paths = root_leaf_paths(root)
        assert [[n.name for n in p] for p in paths] == [
            ["a", "b", "c"], ["a", "b", "d"]]

    def test_ad_child_is_subtwig_leaf_boundary(self):
        # a//b: 'a' has no P-C children, so a is a path of its own.
        twig = parse_twig("a(//b(/c))")
        schemas = [p.attributes for p in decompose(twig).paths]
        assert schemas == [("a",), ("b", "c")]


def every_attribute_covered(twig: TwigQuery) -> bool:
    decomposition = decompose(twig)
    covered = set()
    for path in decomposition.paths:
        covered.update(path.attributes)
    return covered == set(twig.attributes)


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 10_000))
def test_decomposition_covers_all_attributes(seed):
    """Every twig attribute appears in exactly one path relation."""
    twig = random_twig(random.Random(seed), ["x", "y", "z"], max_nodes=6)
    assert every_attribute_covered(twig)
    # Paths partition the attribute set (each node is in exactly one
    # sub-twig path... except branching nodes appear in several paths of
    # the same sub-twig). Check instead: path attrs form contiguous
    # root-to-leaf chains of names.
    decomposition = decompose(twig)
    for path in decomposition.paths:
        for upper, lower in zip(path.nodes, path.nodes[1:]):
            assert lower.parent is upper


class TestPathChains:
    def make_doc(self):
        tree = element(
            "a",
            element("b", element("c", text="1")),
            element("b", element("c", text="2"), element("c", text="2")),
        )
        return XMLDocument(tree)

    def test_iter_path_chains(self):
        doc = self.make_doc()
        twig = parse_twig("a(/b(/c))")
        (path,) = decompose(twig).paths
        chains = list(iter_path_chains(doc, path))
        assert len(chains) == 3

    def test_materialized_relation_dedupes_values(self):
        doc = self.make_doc()
        twig = parse_twig("a(/b(/c))")
        (path,) = decompose(twig).paths
        relation = materialize_path_relation(doc, path)
        # (None, None, 1) and (None, None, 2): the duplicate c=2 collapses.
        assert len(relation) == 2
        assert path_relation_cardinality(doc, path) == 2

    def test_worst_case_document_path_cardinalities(self):
        n = 4
        doc = worst_case_document(n)
        decomposition = decompose(figure2_twig())
        sizes = [path_relation_cardinality(doc, p)
                 for p in decomposition.paths]
        assert sizes == [n, n, n, n, n]

    def test_pc_only_path_join_equals_twig_answer(self):
        """For a pure path twig the path relation IS the twig answer."""
        doc = self.make_doc()
        twig = parse_twig("b(/c)")
        (path,) = decompose(twig).paths
        assert materialize_path_relation(doc, path) == \
            match_relation(doc, twig)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_path_relations_relax_twig_answer(doc_seed, twig_seed):
    """The join of path relations contains the twig answer (projected).

    This is the relaxation XJoin exploits: path relations enforce P-C
    chains but not A-D edges or shared branching nodes.
    """
    doc = random_document(random.Random(doc_seed), tags=("x", "y"),
                          max_nodes=20, value_range=2)
    twig = random_twig(random.Random(twig_seed), ["x", "y"], max_nodes=4)
    answer = match_relation(doc, twig)
    for path in decompose(twig).paths:
        projected = answer.project(path.attributes)
        relaxed = materialize_path_relation(doc, path)
        assert projected.rows <= relaxed.rows
