"""Tests for hypergraphs and the AGM bound machinery."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agm import (
    agm_bound,
    fractional_edge_cover,
    symbolic_exponent,
    verify_cover,
    verify_packing,
    vertex_packing,
)
from repro.core.hypergraph import Hyperedge, Hypergraph
from repro.errors import QueryError
from repro.relational.leapfrog import leapfrog_triejoin
from repro.relational.relation import Relation


def triangle_graph(n=None):
    g = Hypergraph()
    g.add_edge("R", ["a", "b"], cardinality=n)
    g.add_edge("S", ["b", "c"], cardinality=n)
    g.add_edge("T", ["a", "c"], cardinality=n)
    return g


class TestHypergraph:
    def test_vertices_first_appearance_order(self):
        g = triangle_graph()
        assert g.vertices == ("a", "b", "c")

    def test_edge_lookup(self):
        g = triangle_graph()
        assert g.edge("R").vertices == frozenset({"a", "b"})
        with pytest.raises(QueryError):
            g.edge("Z")

    def test_duplicate_edge_name_rejected(self):
        g = triangle_graph()
        with pytest.raises(QueryError):
            g.add_edge("R", ["x"])

    def test_empty_edge_rejected(self):
        with pytest.raises(QueryError):
            Hyperedge("E", frozenset())

    def test_edges_covering(self):
        g = triangle_graph()
        assert {e.name for e in g.edges_covering("a")} == {"R", "T"}

    def test_with_cardinalities(self):
        g = triangle_graph().with_cardinalities({"R": 5})
        assert g.edge("R").cardinality == 5
        assert g.edge("S").cardinality is None

    def test_cardinalities_requires_all(self):
        with pytest.raises(QueryError):
            triangle_graph().cardinalities()
        assert triangle_graph(4).cardinalities() == {
            "R": 4, "S": 4, "T": 4}

    def test_empty_graph_rejected_by_bounds(self):
        with pytest.raises(QueryError):
            fractional_edge_cover(Hypergraph())


class TestFractionalEdgeCover:
    def test_triangle_exponent_is_three_halves(self):
        cover = fractional_edge_cover(triangle_graph())
        assert cover.total == Fraction(3, 2)
        assert all(w == Fraction(1, 2) for w in cover.weights.values())

    def test_chain_exponent(self):
        # R(a,b)-S(b,c): cover must take both edges fully? No: b shared;
        # a needs R, c needs S -> total 2.
        g = Hypergraph()
        g.add_edge("R", ["a", "b"])
        g.add_edge("S", ["b", "c"])
        assert symbolic_exponent(g) == 2

    def test_single_edge(self):
        g = Hypergraph()
        g.add_edge("R", ["a", "b", "c"])
        assert symbolic_exponent(g) == 1

    def test_support_filters_zeros(self):
        g = Hypergraph()
        g.add_edge("R", ["a"])
        g.add_edge("S", ["a"])
        cover = fractional_edge_cover(g)
        assert cover.total == 1
        assert len(cover.support()) == 1

    def test_weighted_cover_prefers_small_relation(self):
        g = Hypergraph()
        g.add_edge("BIG", ["a"], cardinality=1000)
        g.add_edge("SMALL", ["a"], cardinality=2)
        bound = agm_bound(g)
        assert bound.cover.support().keys() == {"SMALL"}
        assert bound.bound == pytest.approx(2.0)

    def test_paper_example33_exponents(self):
        """Figure 2 / Example 3.3: twig bound n^5, query bound n^{7/2}."""
        twig_only = Hypergraph()
        for name, attrs in [("R3", "AB"), ("R4", "AD"), ("R5", "CE"),
                            ("R6", "FH"), ("R7", "G")]:
            twig_only.add_edge(name, list(attrs))
        assert symbolic_exponent(twig_only) == 5

        full = Hypergraph()
        full.add_edge("R1", ["B", "D"])
        full.add_edge("R2", ["F", "G", "H"])
        for name, attrs in [("R3", "AB"), ("R4", "AD"), ("R5", "CE"),
                            ("R6", "FH"), ("R7", "G")]:
            full.add_edge(name, list(attrs))
        assert symbolic_exponent(full) == Fraction(7, 2)

    def test_paper_example34_exponents(self):
        """Example 3.4: Q, Q1, Q2 bounds are n^2, n^2, n^5."""
        full = Hypergraph()
        full.add_edge("R1", ["A", "B", "C", "D"])
        full.add_edge("R2", ["E", "F", "G", "H"])
        for name, attrs in [("R3", "AB"), ("R4", "AD"), ("R5", "CE"),
                            ("R6", "FH"), ("R7", "G")]:
            full.add_edge(name, list(attrs))
        assert symbolic_exponent(full) == 2

        q1 = Hypergraph()
        q1.add_edge("R1", ["A", "B", "C", "D"])
        q1.add_edge("R2", ["E", "F", "G", "H"])
        assert symbolic_exponent(q1) == 2


class TestVertexPackingDuality:
    def test_triangle_packing(self):
        packing = vertex_packing(triangle_graph())
        assert packing.total == Fraction(3, 2)

    def test_duality_equals_cover(self):
        g = triangle_graph()
        assert vertex_packing(g).total == fractional_edge_cover(g).total

    def test_certificates_verify(self):
        g = triangle_graph()
        assert verify_cover(g, fractional_edge_cover(g).weights)
        assert verify_packing(g, vertex_packing(g).weights)

    def test_verify_rejects_bad_certificates(self):
        g = triangle_graph()
        assert not verify_cover(g, {"R": Fraction(1, 2)})
        assert not verify_packing(
            g, {"a": Fraction(1), "b": Fraction(1), "c": Fraction(0)})


def random_hypergraph():
    def build(edge_sets):
        g = Hypergraph()
        for index, vertices in enumerate(edge_sets):
            g.add_edge(f"E{index}", [f"v{v}" for v in vertices])
        return g

    return st.builds(build, st.lists(
        st.sets(st.integers(0, 4), min_size=1, max_size=4),
        min_size=1, max_size=5))


@settings(max_examples=60, deadline=None)
@given(random_hypergraph())
def test_duality_on_random_hypergraphs(graph):
    """Equation 1's optimum always equals the primal cover optimum."""
    cover = fractional_edge_cover(graph)
    packing = vertex_packing(graph)
    assert cover.total == packing.total
    assert verify_cover(graph, cover.weights)
    assert verify_packing(graph, packing.weights)


class TestAGMInstanceBound:
    def test_zero_cardinality_gives_zero_bound(self):
        g = Hypergraph()
        g.add_edge("R", ["a"], cardinality=0)
        assert agm_bound(g).bound == 0

    def test_missing_cardinality_raises(self):
        g = Hypergraph()
        g.add_edge("R", ["a"])
        with pytest.raises(QueryError):
            agm_bound(g)

    def test_negative_cardinality_raises(self):
        g = Hypergraph()
        g.add_edge("R", ["a"], cardinality=-1)
        with pytest.raises(QueryError):
            agm_bound(g)

    def test_bound_ceiling_absorbs_float_noise(self):
        g = Hypergraph()
        g.add_edge("R", ["a", "b"], cardinality=10)
        g.add_edge("S", ["b", "c"], cardinality=10)
        assert agm_bound(g).bound_ceiling == 100

    def test_triangle_instance_bound(self):
        bound = agm_bound(triangle_graph(100))
        assert bound.bound == pytest.approx(1000.0)  # n^{3/2}


@settings(max_examples=50, deadline=None)
@given(
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15),
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15),
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15),
)
def test_agm_bound_dominates_actual_join_size(r_rows, s_rows, t_rows):
    """Lemma 3.1's relational core: |Q| <= AGM bound, on random triangles."""
    r = Relation("R", ("a", "b"), r_rows)
    s = Relation("S", ("b", "c"), s_rows)
    t = Relation("T", ("a", "c"), t_rows)
    graph = triangle_graph().with_cardinalities(
        {"R": len(r), "S": len(s), "T": len(t)})
    bound = agm_bound(graph)
    actual = len(leapfrog_triejoin([r, s, t], ("a", "b", "c")))
    assert actual <= bound.bound_ceiling
