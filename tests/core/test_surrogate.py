"""Tests for node surrogates (identity bindings for valueless nodes)."""

import pytest

from repro.core.baseline import baseline_join
from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.surrogate import NodeSurrogate, erase_surrogates, node_representation
from repro.core.xjoin import xjoin
from repro.data.scenarios import figure1_query
from repro.instrumentation import JoinStats
from repro.relational.relation import Relation
from repro.relational.schema import sort_key
from repro.xml.model import XMLDocument, XMLNode, element
from repro.xml.twig_parser import parse_twig


class TestNodeSurrogate:
    def test_equality_by_start(self):
        assert NodeSurrogate(3) == NodeSurrogate(3)
        assert NodeSurrogate(3) != NodeSurrogate(4)

    def test_hashable(self):
        assert len({NodeSurrogate(1), NodeSurrogate(1), NodeSurrogate(2)}) == 2

    def test_not_equal_to_values(self):
        assert NodeSurrogate(3) != 3
        assert NodeSurrogate(3) != None  # noqa: E711

    def test_sortable_via_sort_key(self):
        values = [NodeSurrogate(10), 5, "x", NodeSurrogate(2)]
        ordered = sorted(values, key=sort_key)
        # surrogates sort after scalars, among themselves by start.
        assert ordered[0] == 5
        assert ordered[-2:] == [NodeSurrogate(2), NodeSurrogate(10)]

    def test_repr_zero_padded_for_stable_order(self):
        assert repr(NodeSurrogate(2)) < repr(NodeSurrogate(10))

    def test_node_representation(self):
        doc = XMLDocument(element("a", element("b", text="5")))
        a, b = doc.nodes("a")[0], doc.nodes("b")[0]
        assert node_representation(b, True) == 5     # has a value: kept
        assert node_representation(b, False) == 5
        assert node_representation(a, False) is None
        assert node_representation(a, True) == NodeSurrogate(a.start)

    def test_erase_surrogates(self):
        row = (1, NodeSurrogate(3), "x")
        assert erase_surrogates(row) == (1, None, "x")


def order_lines_doc(pairs):
    root = XMLNode("lines")
    for isbn, price in pairs:
        line = root.add("line")
        line.add("isbn", text=isbn)
        line.add("price", text=str(price))
    return XMLDocument(root)


class TestSurrogateSemantics:
    def test_container_conflation_avoided(self):
        """Without surrogates the paths (line,isbn) and (line,price) would
        pair every isbn with every price; with them the per-line linkage
        survives."""
        doc = order_lines_doc([("x", 1), ("y", 2), ("z", 3)])
        twig = parse_twig("line(/isbn, /price)")
        query = MultiModelQuery([], [TwigBinding(twig, doc)])
        stats = JoinStats()
        result = xjoin(query, stats=stats)
        assert len(result) == 3
        assert set(result.project(["isbn", "price"])) == {
            ("x", 1), ("y", 2), ("z", 3)}
        # intermediates stay linear, not 3x3.
        assert stats.max_intermediate <= 3

    def test_result_is_value_level(self):
        doc = order_lines_doc([("x", 1)])
        twig = parse_twig("line(/isbn)")
        query = MultiModelQuery([], [TwigBinding(twig, doc)])
        result = xjoin(query)
        # the container column surfaces as None, like the naive matcher.
        assert set(result) == {(None, "x")}
        assert result == query.naive_join()

    def test_structural_attribute_detection(self):
        query = figure1_query()
        binding = query.twigs[0]
        structural = query.structural_attributes(binding)
        # orderLine joins nothing outside the twig; orderID joins R.
        assert "orderLine" in structural
        assert "orderID" not in structural

    def test_relation_shared_attribute_not_surrogated(self):
        """If a relation joins on the container attribute, value
        semantics (None) must be preserved."""
        doc = order_lines_doc([("x", 1)])
        twig = parse_twig("line(/isbn)")
        relation = Relation("R", ("line", "tag"), [(None, "keep")])
        query = MultiModelQuery([relation], [TwigBinding(twig, doc)])
        assert query.structural_attributes(query.twigs[0]) == \
            frozenset({"isbn"})
        result = xjoin(query)
        assert result == query.naive_join()
        assert len(result) == 1

    def test_bound_uses_surrogate_cardinalities(self):
        # Three lines with identical values: value-level cardinality of
        # (line, isbn) would be 1; surrogate-aware cardinality is 3.
        doc = order_lines_doc([("x", 1), ("x", 1), ("x", 1)])
        twig = parse_twig("line(/isbn, /price)")
        query = MultiModelQuery([], [TwigBinding(twig, doc)])
        graph = query.hypergraph()
        path_sizes = sorted(edge.cardinality for edge in graph.edges)
        assert path_sizes == [3, 3]
        stats = JoinStats()
        xjoin(query, stats=stats)
        assert stats.max_intermediate <= query.size_bound().bound_ceiling

    def test_baseline_agrees_on_surrogate_heavy_instances(self):
        doc = order_lines_doc([("x", 1), ("y", 2), ("x", 2)])
        twig = parse_twig("line(/isbn, /price)")
        relation = Relation("R", ("isbn",), [("x",), ("y",)])
        query = MultiModelQuery([relation], [TwigBinding(twig, doc)])
        naive = query.naive_join()
        assert xjoin(query) == naive
        assert baseline_join(query) == naive

    def test_modes_work_with_surrogates(self):
        root = XMLNode("r")
        for i in range(4):
            box = root.add("box")
            inner = box.add("pad")
            inner.add("v", text=str(i))
        doc = XMLDocument(root)
        twig = parse_twig("box(//v)")
        query = MultiModelQuery([], [TwigBinding(twig, doc)])
        reference = xjoin(query)
        assert len(reference) == 4
        assert xjoin(query, ad_prefilter=True) == reference
        assert xjoin(query, partial_validation=True) == reference
