"""Tests for attribute-order planning and twig structure validation."""

import pytest

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.planner import (
    appearance_order,
    attribute_order,
    connected_order,
    domain_order,
)
from repro.core.validation import PartialStructureValidator, StructureValidator
from repro.data.synthetic import example34_instance
from repro.errors import PlanError
from repro.instrumentation import JoinStats
from repro.relational.relation import Relation
from repro.xml.model import XMLDocument, element
from repro.xml.twig_parser import parse_twig


@pytest.fixture
def instance():
    return example34_instance(3)


class TestPlanner:
    def test_appearance_order(self, instance):
        order = appearance_order(instance.query)
        assert order == ("A", "B", "C", "D", "E", "F", "G", "H")

    def test_domain_order_is_permutation(self, instance):
        order = domain_order(instance.query)
        assert sorted(order) == sorted(instance.query.attributes)
        # A has domain {0}: it must come first.
        assert order[0] == "A"

    def test_connected_order_is_permutation(self, instance):
        order = connected_order(instance.query)
        assert sorted(order) == sorted(instance.query.attributes)

    def test_connected_order_stays_connected(self, instance):
        order = connected_order(instance.query)
        graph = instance.query.hypergraph(with_cardinalities=False)
        bound = {order[0]}
        for attribute in order[1:]:
            touches = any(
                bound & set(edge.vertices)
                for edge in graph.edges_covering(attribute))
            assert touches, f"{attribute} expanded disconnected"
            bound.add(attribute)

    def test_attribute_order_dispatch(self, instance):
        assert attribute_order(instance.query) == \
            appearance_order(instance.query)
        assert attribute_order(instance.query, "domain") == \
            domain_order(instance.query)
        explicit = tuple(reversed(instance.query.attributes))
        assert attribute_order(instance.query, explicit) == explicit

    def test_bad_policy_raises(self, instance):
        with pytest.raises(PlanError):
            attribute_order(instance.query, "alphabetical")

    def test_incomplete_explicit_order_raises(self, instance):
        with pytest.raises(PlanError):
            attribute_order(instance.query, ("A",))

    def test_connected_order_handles_disconnected_queries(self):
        r = Relation("R", ("a",), [(1,)])
        s = Relation("S", ("z",), [(2,)])
        query = MultiModelQuery([r, s])
        assert sorted(connected_order(query)) == ["a", "z"]


def branch_document():
    root = element("r")
    a1 = element("a", element("b", text="10"), text="1")
    a2 = element("a", text="2")
    root.append(a1)
    root.append(a2)
    return XMLDocument(root)


class TestStructureValidator:
    def test_accepts_real_embedding(self):
        doc = branch_document()
        twig = parse_twig("a(//b)")
        validator = StructureValidator(doc, twig)
        assert validator.validate({"a": 1, "b": 10})

    def test_rejects_value_mix(self):
        doc = branch_document()
        twig = parse_twig("a(//b)")
        validator = StructureValidator(doc, twig)
        assert not validator.validate({"a": 2, "b": 10})

    def test_pc_vs_ad_distinction(self):
        doc = branch_document()
        pc_twig = parse_twig("r(/b)")
        validator = StructureValidator(doc, pc_twig)
        assert not validator.validate({"r": None, "b": 10})
        ad_twig = parse_twig("r(//b)")
        validator = StructureValidator(doc, ad_twig)
        assert validator.validate({"r": None, "b": 10})

    def test_memoisation(self):
        doc = branch_document()
        validator = StructureValidator(doc, parse_twig("a(//b)"))
        validator.validate({"a": 1, "b": 10})
        validator.validate({"a": 1, "b": 10})
        assert validator.cache_size == 1

    def test_filter_counted_in_stats(self):
        doc = branch_document()
        validator = StructureValidator(doc, parse_twig("a(//b)"))
        stats = JoinStats()
        validator.validate({"a": 2, "b": 10}, stats=stats)
        assert stats.filtered == 1


class TestPartialStructureValidator:
    def test_partial_subset_sound(self):
        doc = branch_document()
        twig = parse_twig("a(//b)")
        validator = PartialStructureValidator(doc, twig)
        # binding only 'a': both a-values embed (a=1 has b below; a=2 has
        # no b at all so the full twig cannot embed).
        assert validator.validate_subset({"a": 1})
        assert not validator.validate_subset({"a": 2})

    def test_empty_subset_checks_satisfiability(self):
        doc = branch_document()
        validator = PartialStructureValidator(doc, parse_twig("a(//zz)"))
        assert not validator.validate_subset({})

    def test_caches_by_bound_set_and_values(self):
        doc = branch_document()
        validator = PartialStructureValidator(doc, parse_twig("a(//b)"))
        assert validator.validate_subset({"b": 10})
        assert validator.validate_subset({"b": 10})
        assert not validator.validate_subset({"b": 99})
