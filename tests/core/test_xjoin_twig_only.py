"""XJoin as a pure twig matcher: must equal naive matching exactly.

With no relational tables every twig attribute is surrogate-eligible, so
this exercises the identity-binding path end to end: decomposition, path
tries with surrogates, structure validation resolving surrogates, and
erasure back to value-level results.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.xjoin import xjoin
from repro.data.random_instances import random_twig
from repro.instrumentation import JoinStats
from repro.xml.generator import random_document
from repro.xml.navigation import match_relation
from repro.xml.twigstack import twig_stack


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_twig_only_xjoin_equals_naive(doc_seed, twig_seed):
    doc = random_document(random.Random(doc_seed), tags=("x", "y", "z"),
                          max_nodes=25, value_range=2)
    twig = random_twig(random.Random(twig_seed), ["x", "y", "z"],
                       max_nodes=5)
    query = MultiModelQuery([], [TwigBinding(twig, doc)])
    expected = match_relation(doc, twig).project(query.attributes)
    assert xjoin(query) == expected
    assert xjoin(query, "connected", ad_prefilter=True) == expected


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_twig_only_lemma35_with_surrogates(doc_seed, twig_seed):
    doc = random_document(random.Random(doc_seed), tags=("x", "y"),
                          max_nodes=20, value_range=1)
    twig = random_twig(random.Random(twig_seed), ["x", "y"], max_nodes=4)
    query = MultiModelQuery([], [TwigBinding(twig, doc)])
    bound = query.size_bound().bound_ceiling
    stats = JoinStats()
    xjoin(query, stats=stats)
    assert stats.max_intermediate <= bound


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 5_000), st.integers(0, 5_000))
def test_twig_only_xjoin_equals_twigstack(doc_seed, twig_seed):
    """Two completely different engines, same answers."""
    doc = random_document(random.Random(doc_seed), tags=("x", "y"),
                          max_nodes=20, value_range=2)
    twig = random_twig(random.Random(twig_seed), ["x", "y"], max_nodes=4)
    query = MultiModelQuery([], [TwigBinding(twig, doc)])
    assert xjoin(query) == \
        twig_stack(doc, twig).project(query.attributes)
