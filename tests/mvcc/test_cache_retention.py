"""The read-after-evict regression: pinned versions stay cache-resident.

Before the MVCC layer, a superseded document version's columnar view and
stats were evicted eagerly (one live entry per document). A snapshot
still pinning that version would then re-enter the cache build path
against an object whose entries had just been reclaimed — paying a full
rebuild per read, or (with an id-keyed cache and a collected clone)
reading a reassigned entry. These tests pin through the real session
API and watch the cache internals, in the style of
``tests/updates/test_columnar_cache.py``.
"""

from __future__ import annotations

from repro.data.scenarios import figure1_query
from repro.updates.session import QuerySession
from repro.xml.columnar import (
    _COLUMNAR_CACHE,
    _PINNED_VERSIONS,
    _STATS_CACHE,
    columnar,
    document_stats,
    invalidate_document_caches,
)


def cache_keys(document) -> "set[tuple[int, int]]":
    return {key for key in _COLUMNAR_CACHE if key[0] == id(document)} \
        | {key for key in _STATS_CACHE if key[0] == id(document)}


class TestPinnedCloneRetention:
    def test_frozen_clone_entries_survive_invalidation(self):
        session = QuerySession(figure1_query())
        snapshot = session.pin()
        document = session.document_of("invoices")
        session.change_value("invoices", document.nodes("price")[0], "1")
        clone = snapshot.document(id(document))
        assert clone is not document
        view = columnar(clone)
        stats = document_stats(clone)
        # The window: an explicit invalidation (e.g. a rebuild fallback
        # elsewhere) must not reclaim the pinned clone's entries.
        invalidate_document_caches(clone)
        assert columnar(clone) is view
        assert document_stats(clone) is stats
        snapshot.release()

    def test_release_reclaims_the_clone_entries(self):
        session = QuerySession(figure1_query())
        snapshot = session.pin()
        document = session.document_of("invoices")
        session.change_value("invoices", document.nodes("price")[0], "2")
        clone = snapshot.document(id(document))
        columnar(clone)
        document_stats(clone)
        ident, version = id(clone), clone.version
        assert (ident, version) in _PINNED_VERSIONS
        snapshot.release()
        assert (ident, version) not in _PINNED_VERSIONS
        assert not cache_keys(clone)

    def test_shared_clone_stays_until_the_last_pin(self):
        session = QuerySession(figure1_query())
        first = session.pin()
        second = session.pin()
        document = session.document_of("invoices")
        session.change_value("invoices", document.nodes("price")[0], "3")
        clone = first.document(id(document))
        assert second.document(id(document)) is clone
        columnar(clone)
        first.release()
        # Second snapshot still pins the version: entries resident.
        assert cache_keys(clone)
        assert second.document(id(document)) is clone
        second.release()
        assert not cache_keys(clone)

    def test_live_document_keeps_eager_eviction(self):
        """The guard-rail: only frozen clones are pinned, so the live
        document's superseded entries (which alias the in-place-patched
        view) are still evicted eagerly — one live entry per document."""
        session = QuerySession(figure1_query())
        document = session.document_of("invoices")
        for step in range(3):
            session.change_value("invoices",
                                 document.nodes("price")[0], str(step))
        keys = cache_keys(document)
        assert keys == {(id(document), document.version)}
        assert not [key for key in _PINNED_VERSIONS
                    if key[0] == id(document)]

    def test_snapshot_reads_stay_cheap_after_writer_churn(self):
        """Reading a pinned snapshot repeatedly must reuse one frozen
        view — the cache entry is built once per (clone, version), not
        once per read, even while the writer keeps superseding."""
        session = QuerySession(figure1_query())
        snapshot = session.pin()
        document = session.document_of("invoices")
        for step in range(3):
            session.change_value("invoices",
                                 document.nodes("price")[0], str(step))
        clone = snapshot.document(id(document))
        first_view = columnar(clone)
        for _ in range(3):
            assert snapshot.document(id(document)) is clone
            assert columnar(clone) is first_view
        snapshot.release()
