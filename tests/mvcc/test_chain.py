"""VersionChain semantics: pins, watermark, retention, reclamation."""

from __future__ import annotations

import pytest

from repro.errors import SnapshotError
from repro.mvcc import VersionChain


class TestPinning:
    def test_pin_counts_per_version(self):
        chain = VersionChain("r")
        assert chain.pin(3) == 1
        assert chain.pin(3) == 2
        assert chain.pin(5) == 1
        assert chain.pin_count() == 3
        assert chain.pinned(3) and chain.pinned(5)
        assert not chain.pinned(4)

    def test_release_decrements_then_clears(self):
        chain = VersionChain("r")
        chain.pin(3)
        chain.pin(3)
        chain.release(3)
        assert chain.pinned(3)
        chain.release(3)
        assert not chain.pinned(3)
        assert chain.pin_count() == 0

    def test_release_without_pin_is_an_error(self):
        chain = VersionChain("r")
        with pytest.raises(SnapshotError, match="holds no pin"):
            chain.release(7)
        chain.pin(7)
        chain.release(7)
        with pytest.raises(SnapshotError, match="holds no pin"):
            chain.release(7)

    def test_watermark_is_oldest_pin(self):
        chain = VersionChain("r")
        assert chain.watermark() is None
        chain.pin(9)
        chain.pin(4)
        chain.pin(6)
        assert chain.watermark() == 4
        chain.release(4)
        assert chain.watermark() == 6
        chain.release(6)
        chain.release(9)
        assert chain.watermark() is None


class TestRetention:
    def test_artifact_round_trip(self):
        chain = VersionChain("r")
        chain.pin(2)
        chain.retain(2, "frozen@2")
        assert chain.artifact(2) == "frozen@2"
        assert chain.artifact(3) is None
        assert chain.retained_versions() == (2,)

    def test_first_retention_wins(self):
        chain = VersionChain("r")
        chain.pin(2)
        assert chain.retain(2, "first") == "first"
        assert chain.retain(2, "second") == "first"
        assert chain.artifact(2) == "first"

    def test_release_reclaims_unpinned_artifacts(self):
        reclaimed = []
        chain = VersionChain("r", reclaim=reclaimed.append)
        chain.pin(1)
        chain.pin(2)
        chain.retain(1, "a1")
        chain.retain(2, "a2")
        chain.release(1)
        assert reclaimed == ["a1"]
        assert chain.retained_versions() == (2,)
        chain.release(2)
        assert reclaimed == ["a1", "a2"]
        assert chain.retained_versions() == ()

    def test_artifact_survives_while_any_pin_lives(self):
        reclaimed = []
        chain = VersionChain("r", reclaim=reclaimed.append)
        chain.pin(1)
        chain.pin(1)
        chain.retain(1, "shared")
        chain.release(1)
        assert chain.artifact(1) == "shared" and not reclaimed
        chain.release(1)
        assert chain.artifact(1) is None and reclaimed == ["shared"]

    def test_reclaim_unpinned_is_explicit_watermark_advance(self):
        reclaimed = []
        chain = VersionChain("r", reclaim=reclaimed.append)
        chain.retain(1, "orphan")  # retained without a pin (defensive)
        chain.reclaim_unpinned()
        assert reclaimed == ["orphan"]
