"""Session-level snapshot semantics: copy-on-write, release, detach.

Every check compares a pinned snapshot against a rebuild-from-scratch
oracle: the same inputs cloned at pin time (fresh relations, a fresh
document tree — no shared caches) and joined naively.
"""

from __future__ import annotations

import pytest

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.data.scenarios import figure1_query
from repro.errors import SnapshotError
from repro.relational.relation import Relation
from repro.updates.session import QuerySession
from repro.xml.model import XMLDocument, XMLNode


def oracle_at(session: QuerySession) -> Relation:
    """Naive join of the session's inputs cloned *right now*."""
    query = session.query
    clone = MultiModelQuery(
        [Relation(r.name, r.schema.attributes, list(r.rows))
         for r in query.relations],
        [TwigBinding(b.twig, XMLDocument(b.document.root.copy()))
         for b in query.twigs],
        name=query.name)
    return clone.naive_join()


def order_line(order_id: int) -> XMLNode:
    line = XMLNode("orderLine")
    line.add("orderID", text=str(order_id))
    line.add("ISBN", text=f"isbn-{order_id}")
    line.add("price", text="11")
    return line


class TestCopyOnWrite:
    def test_pin_is_lazy_nothing_retained_until_a_write(self):
        session = QuerySession(figure1_query())
        snapshot = session.pin()
        assert all(chain.retained_versions() == ()
                   for chain in session.mvcc.relation_chains.values())
        assert all(chain.retained_versions() == ()
                   for chain in session.mvcc.document_chains.values())
        # Unsuperseded pins read the live objects.
        assert snapshot.relation("R") is session.relations["R"].relation
        assert not snapshot.detached
        snapshot.release()

    def test_relational_write_preserves_the_pinned_version(self):
        session = QuerySession(figure1_query())
        snapshot = session.pin()
        frozen = oracle_at(session)
        session.insert("R", (10963, "eve"))
        chain = session.mvcc.relation_chains["R"]
        assert chain.retained_versions() == (0,)
        assert snapshot.answer().sorted_rows() == frozen.sorted_rows()
        assert snapshot.run().sorted_rows() == frozen.sorted_rows()
        assert session.answer().sorted_rows() != frozen.sorted_rows()
        snapshot.release()
        assert chain.retained_versions() == ()

    def test_document_write_freezes_a_clone_first(self):
        session = QuerySession(figure1_query())
        snapshot = session.pin()
        frozen = oracle_at(session)
        document = session.document_of("invoices")
        live_price = document.nodes("price")[0]
        session.change_value("invoices", live_price, "999")
        chain = session.mvcc.document_chains[id(document)]
        assert chain.retained_versions() != ()
        # The snapshot reads the clone, never the patched live tree.
        pinned_doc = snapshot.document(id(document))
        assert pinned_doc is not document
        assert pinned_doc.nodes("price")[0].text != "999"
        assert snapshot.run().sorted_rows() == frozen.sorted_rows()
        assert session.answer().sorted_rows() != frozen.sorted_rows()
        snapshot.release()

    def test_one_clone_serves_many_writes_at_one_version(self):
        session = QuerySession(figure1_query())
        snapshot = session.pin()
        document = session.document_of("invoices")
        root = document.root
        session.insert_subtree("invoices", root, order_line(50_001))
        session.insert_subtree("invoices", root, order_line(50_002))
        session.change_value("invoices", document.nodes("price")[0], "7")
        chain = session.mvcc.document_chains[id(document)]
        assert len(chain.retained_versions()) == 1
        snapshot.release()

    def test_staggered_snapshots_each_see_their_own_version(self):
        session = QuerySession(figure1_query())
        pinned = []
        for step in range(3):
            pinned.append((session.pin(), oracle_at(session)))
            session.insert("R", (10963, f"user-{step}"))
            session.change_value(
                "invoices",
                session.document_of("invoices").nodes("price")[0],
                str(100 + step))
        for snapshot, frozen in pinned:
            assert snapshot.answer().sorted_rows() == frozen.sorted_rows()
            assert snapshot.run().sorted_rows() == frozen.sorted_rows()
        assert session.mvcc.watermark() == 0
        for snapshot, _frozen in pinned:
            snapshot.release()
        assert session.mvcc.watermark() is None
        assert session.mvcc.active_count() == 0


class TestLifecycle:
    def test_released_snapshot_refuses_reads(self):
        session = QuerySession(figure1_query())
        snapshot = session.pin()
        snapshot.release()
        snapshot.release()  # idempotent
        with pytest.raises(SnapshotError, match="released"):
            snapshot.answer()
        with pytest.raises(SnapshotError, match="released"):
            snapshot.query()

    def test_context_manager_releases(self):
        session = QuerySession(figure1_query())
        with session.pin() as snapshot:
            assert session.mvcc.active_count() == 1
        assert snapshot.released
        assert session.mvcc.active_count() == 0

    def test_detach_freezes_live_documents(self):
        session = QuerySession(figure1_query())
        snapshot = session.pin()
        assert not snapshot.detached
        snapshot.detach()
        assert snapshot.detached
        document = session.document_of("invoices")
        # Detached reads resolve to the clone even before any write.
        assert snapshot.document(id(document)) is not document
        frozen = oracle_at(session)
        session.delete_subtree("invoices",
                               document.nodes("orderLine")[0])
        assert snapshot.run().sorted_rows() == frozen.sorted_rows()
        snapshot.release()

    def test_relation_only_session_supports_snapshots(self):
        query = MultiModelQuery(
            [Relation("R", ("a", "b"), [(1, 2), (2, 3)]),
             Relation("S", ("b", "c"), [(2, 9), (3, 7)])],
            name="RS")
        session = QuerySession(query)
        snapshot = session.pin()
        frozen = oracle_at(session)
        assert snapshot.detached  # no documents to freeze
        session.delete("R", (1, 2))
        session.insert("S", (3, 8))
        assert snapshot.answer().sorted_rows() == frozen.sorted_rows()
        assert snapshot.run().sorted_rows() == frozen.sorted_rows()
        snapshot.release()


class TestPlannerDefaultRun:
    def test_run_defaults_to_the_planners_choice(self):
        session = QuerySession(figure1_query())
        algorithm = session.planned_algorithm()
        assert algorithm in ("generic_join", "leapfrog")
        default = session.run()
        explicit = session.run("generic_join")
        assert default.sorted_rows() == explicit.sorted_rows()

    def test_parity_holds_across_updates(self):
        session = QuerySession(figure1_query())
        session.insert("R", (10963, "eve"))
        session.change_value(
            "invoices",
            session.document_of("invoices").nodes("price")[0], "55")
        assert session.run().sorted_rows() \
            == session.run("generic_join").sorted_rows() \
            == session.answer().sorted_rows()
