"""Tests for CSV I/O, the catalog, and statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueryError, RelationError
from repro.relational.catalog import Database
from repro.relational.csvio import (
    parse_value,
    read_csv,
    relation_from_csv,
    relation_to_csv,
    write_csv,
)
from repro.relational.relation import Relation
from repro.relational.statistics import column_stats, relation_stats


class TestParseValue:
    def test_int(self):
        assert parse_value("42") == 42

    def test_negative_int(self):
        assert parse_value("-7") == -7

    def test_float(self):
        assert parse_value("2.5") == 2.5

    def test_string(self):
        assert parse_value("978-3-16-1") == "978-3-16-1"

    def test_empty_string(self):
        assert parse_value("") == ""


class TestCsvRoundtrip:
    def test_roundtrip_simple(self):
        r = Relation("R", ("a", "b"), [(1, "x"), (2, "y")])
        assert relation_from_csv("R", relation_to_csv(r)) == r

    def test_header_only(self):
        r = Relation("R", ("a", "b"))
        assert relation_from_csv("R", relation_to_csv(r)) == r

    def test_empty_text_raises(self):
        with pytest.raises(RelationError):
            relation_from_csv("R", "")

    def test_file_roundtrip(self, tmp_path):
        r = Relation("R", ("userID", "ISBN"), [("jack", "978-3-16-1")])
        path = tmp_path / "r.csv"
        write_csv(r, path)
        assert read_csv("R", path) == r

    @given(st.sets(st.tuples(st.integers(-50, 50),
                             st.text(alphabet="abcxyz", max_size=4)),
                   max_size=20))
    def test_roundtrip_random(self, rows):
        r = Relation("R", ("n", "s"), rows)
        assert relation_from_csv("R", relation_to_csv(r)) == r


class TestDatabase:
    def test_add_and_get(self):
        db = Database()
        r = Relation("R", ("a",), [(1,)])
        db.add(r)
        assert db["R"] is r

    def test_add_duplicate_raises(self):
        db = Database([Relation("R", ("a",))])
        with pytest.raises(QueryError):
            db.add(Relation("R", ("a",)))

    def test_replace(self):
        db = Database([Relation("R", ("a",))])
        replacement = Relation("R", ("a",), [(1,)])
        db.add(replacement, replace=True)
        assert len(db["R"]) == 1

    def test_remove(self):
        db = Database([Relation("R", ("a",))])
        db.remove("R")
        assert "R" not in db

    def test_remove_missing_raises(self):
        with pytest.raises(QueryError):
            Database().remove("R")

    def test_get_missing_raises(self):
        with pytest.raises(QueryError):
            Database()["nope"]

    def test_iteration_and_names(self):
        db = Database([Relation("R", ("a",)), Relation("S", ("b",))])
        assert db.names == ("R", "S")
        assert len(db) == 2
        assert {r.name for r in db} == {"R", "S"}

    def test_relations_lookup(self):
        db = Database([Relation("R", ("a",)), Relation("S", ("b",))])
        assert [r.name for r in db.relations(["S", "R"])] == ["S", "R"]

    def test_load_csv(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,b\n1,2\n", encoding="utf-8")
        db = Database()
        db.load_csv("R", path)
        assert (1, 2) in db["R"]

    def test_stats_cached_and_invalidated(self):
        db = Database([Relation("R", ("a",), [(1,), (2,)])])
        first = db.stats("R")
        assert db.stats("R") is first
        db.add(Relation("R", ("a",), [(1,)]), replace=True)
        assert db.stats("R").cardinality == 1


class TestStatistics:
    def test_column_stats(self):
        r = Relation("R", ("a", "b"), [(1, "x"), (2, "x"), (2, "y")])
        stats = column_stats(r, "a")
        assert stats.distinct == 2
        assert stats.minimum == 1
        assert stats.maximum == 2
        assert stats.max_frequency == 2

    def test_column_stats_empty(self):
        stats = column_stats(Relation("R", ("a",)), "a")
        assert stats.distinct == 0
        assert stats.minimum is None
        # Empty columns are *unknown*, not infinitely selective: estimate
        # "keep everything" so cost models never zero out a subtree.
        assert stats.selectivity == 1.0

    def test_selectivity(self):
        r = Relation("R", ("a",), [(i,) for i in range(4)])
        assert column_stats(r, "a").selectivity == 0.25

    def test_relation_stats(self):
        r = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        stats = relation_stats(r)
        assert stats.cardinality == 2
        assert stats.distinct("a") == 2
        assert set(stats.columns) == {"a", "b"}
