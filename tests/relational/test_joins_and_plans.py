"""Tests for hash/sort-merge joins and binary join plans."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.instrumentation import JoinStats
from repro.relational.joins import hash_join, sort_merge_join
from repro.relational.plans import (
    estimate_join_size,
    execute_plan,
    greedy_plan,
    join_node,
    leaf,
    left_deep_plan,
)
from repro.relational.relation import Relation

rows2 = st.sets(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=30)


class TestHashJoin:
    def test_matches_reference(self):
        r = Relation("R", ("a", "b"), [(1, 2), (2, 2), (3, 4)])
        s = Relation("S", ("b", "c"), [(2, 7), (4, 8)])
        assert hash_join(r, s) == r.natural_join(s)

    def test_output_schema_left_first(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        s = Relation("S", ("b", "c"), [(2, 3)] * 1)
        assert hash_join(r, s).schema.attributes == ("a", "b", "c")

    def test_output_schema_left_first_even_when_left_larger(self):
        r = Relation("R", ("a", "b"), [(i, 0) for i in range(10)])
        s = Relation("S", ("b", "c"), [(0, 1)])
        assert hash_join(r, s).schema.attributes == ("a", "b", "c")

    def test_disjoint_schemas_product(self):
        r = Relation("R", ("a",), [(1,), (2,)])
        s = Relation("S", ("c",), [(5,), (6,), (7,)])
        assert len(hash_join(r, s)) == 6

    def test_stats_record_intermediate(self):
        stats = JoinStats()
        r = Relation("R", ("a", "b"), [(1, 0), (2, 0)])
        s = Relation("S", ("b", "c"), [(0, 5), (0, 6)])
        out = hash_join(r, s, stats=stats)
        assert stats.max_intermediate == len(out) == 4

    @given(rows2, rows2)
    def test_random_matches_reference(self, lrows, rrows):
        r = Relation("R", ("a", "b"), lrows)
        s = Relation("S", ("b", "c"), rrows)
        assert hash_join(r, s) == r.natural_join(s)


class TestSortMergeJoin:
    def test_matches_reference(self):
        r = Relation("R", ("a", "b"), [(1, 2), (2, 2), (3, 4)])
        s = Relation("S", ("b", "c"), [(2, 7), (2, 8), (4, 8)])
        assert sort_merge_join(r, s) == r.natural_join(s)

    def test_duplicate_key_runs(self):
        r = Relation("R", ("a", "b"), [(i, 0) for i in range(3)])
        s = Relation("S", ("b", "c"), [(0, j) for j in range(4)])
        assert len(sort_merge_join(r, s)) == 12

    def test_disjoint_schema_falls_back_to_product(self):
        r = Relation("R", ("a",), [(1,)])
        s = Relation("S", ("c",), [(2,), (3,)])
        assert len(sort_merge_join(r, s)) == 2

    def test_mixed_type_keys(self):
        r = Relation("R", ("a", "b"), [(1, "x"), (2, 5)])
        s = Relation("S", ("b", "c"), [("x", 1), (5, 2)])
        assert sort_merge_join(r, s) == r.natural_join(s)

    @given(rows2, rows2)
    def test_random_matches_hash_join(self, lrows, rrows):
        r = Relation("R", ("a", "b"), lrows)
        s = Relation("S", ("b", "c"), rrows)
        assert sort_merge_join(r, s) == hash_join(r, s)


class TestPlans:
    def make_db(self):
        return {
            "R": Relation("R", ("a", "b"), [(1, 2), (2, 3)]),
            "S": Relation("S", ("b", "c"), [(2, 4), (3, 5)]),
            "T": Relation("T", ("c", "d"), [(4, 6)]),
        }

    def test_left_deep_plan_structure(self):
        plan = left_deep_plan(["R", "S", "T"])
        assert str(plan) == "((R ⋈ S) ⋈ T)"

    def test_left_deep_requires_relations(self):
        with pytest.raises(PlanError):
            left_deep_plan([])

    def test_execute_left_deep(self):
        db = self.make_db()
        out = execute_plan(left_deep_plan(["R", "S", "T"]), db)
        assert set(out) == {(1, 2, 4, 6)}

    def test_execute_unknown_relation_raises(self):
        with pytest.raises(PlanError):
            execute_plan(leaf("Z"), {})

    def test_execute_counts_each_intermediate(self):
        db = self.make_db()
        stats = JoinStats()
        execute_plan(left_deep_plan(["R", "S", "T"]), db, stats=stats)
        assert len(stats.stages) == 2

    def test_bushy_plan(self):
        db = self.make_db()
        plan = join_node(join_node(leaf("R"), leaf("S")), leaf("T"))
        out = execute_plan(plan, db)
        assert set(out) == {(1, 2, 4, 6)}

    def test_greedy_plan_covers_all_leaves(self):
        db = self.make_db()
        plan = greedy_plan(db)
        assert sorted(plan.leaves()) == ["R", "S", "T"]

    def test_greedy_plan_result_correct(self):
        db = self.make_db()
        out = execute_plan(greedy_plan(db), db)
        assert set(out.project(["a", "b", "c", "d"])) == {(1, 2, 4, 6)}

    def test_greedy_plan_requires_relations(self):
        with pytest.raises(PlanError):
            greedy_plan({})

    def test_estimate_join_size_independence(self):
        r = Relation("R", ("a", "b"), [(i, i % 2) for i in range(10)])
        s = Relation("S", ("b", "c"), [(i % 2, i) for i in range(10)])
        # 10*10 / max-distinct(b)=2 -> 50
        assert estimate_join_size(r, s) == 50
