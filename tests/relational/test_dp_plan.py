"""Tests for the Selinger-style DP join optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.instrumentation import JoinStats
from repro.relational.operators import naive_multiway_join
from repro.relational.plans import dp_plan, execute_plan, greedy_plan
from repro.relational.relation import Relation


def chain_db(sizes):
    """R0(a0,a1) - R1(a1,a2) - ... with the given cardinalities."""
    db = {}
    for index, size in enumerate(sizes):
        rows = [(i % max(size, 1), i) for i in range(size)]
        db[f"R{index}"] = Relation(
            f"R{index}", (f"a{index}", f"a{index + 1}"), rows)
    return db


class TestDPPlan:
    def test_covers_all_leaves(self):
        db = chain_db([4, 4, 4])
        assert sorted(dp_plan(db).leaves()) == ["R0", "R1", "R2"]

    def test_empty_raises(self):
        with pytest.raises(PlanError):
            dp_plan({})

    def test_single_relation(self):
        db = chain_db([3])
        plan = dp_plan(db)
        assert plan.is_leaf and plan.relation == "R0"

    def test_result_correct(self):
        db = chain_db([4, 5, 6])
        expected = naive_multiway_join(list(db.values()))
        out = execute_plan(dp_plan(db), db)
        assert out.project(expected.schema.attributes) == expected

    def test_prefers_selective_start(self):
        """DP should join the two tiny relations before the huge one."""
        db = {
            "BIG": Relation("BIG", ("a", "b"),
                            [(i, j) for i in range(20) for j in range(20)]),
            "S1": Relation("S1", ("a",), [(0,), (1,)]),
            "S2": Relation("S2", ("b",), [(0,)]),
        }
        dp_stats, greedy_stats = JoinStats(), JoinStats()
        execute_plan(dp_plan(db), db, stats=dp_stats)
        execute_plan(greedy_plan(db), db, stats=greedy_stats)
        assert dp_stats.max_intermediate <= greedy_stats.max_intermediate

    def test_handles_disconnected_queries(self):
        db = {
            "R": Relation("R", ("a",), [(1,), (2,)]),
            "S": Relation("S", ("z",), [(9,)]),
        }
        out = execute_plan(dp_plan(db), db)
        assert len(out) == 2

    def test_baseline_dp_policy(self):
        from repro.core.baseline import baseline_join
        from repro.data.synthetic import example33_instance
        instance = example33_instance(2)
        assert baseline_join(instance.query, plan="dp") == \
            baseline_join(instance.query)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(1, 8), min_size=1, max_size=4))
def test_dp_matches_greedy_result_on_random_chains(sizes):
    db = chain_db(sizes)
    dp_out = execute_plan(dp_plan(db), db)
    greedy_out = execute_plan(greedy_plan(db), db)
    attrs = dp_out.schema.attributes
    assert dp_out == greedy_out.project(attrs)
