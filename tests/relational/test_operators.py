"""Tests for repro.relational.operators."""

import pytest

from repro.errors import SchemaError
from repro.relational.operators import (
    antijoin,
    cartesian_product,
    difference,
    intersection,
    naive_multiway_join,
    semijoin,
    select_in,
    union,
)
from repro.relational.relation import Relation


@pytest.fixture
def r():
    return Relation("R", ("a", "b"), [(1, 2), (3, 4)])


@pytest.fixture
def s():
    return Relation("S", ("a", "b"), [(3, 4), (5, 6)])


class TestSetOperators:
    def test_union(self, r, s):
        assert set(union(r, s)) == {(1, 2), (3, 4), (5, 6)}

    def test_difference(self, r, s):
        assert set(difference(r, s)) == {(1, 2)}

    def test_intersection(self, r, s):
        assert set(intersection(r, s)) == {(3, 4)}

    def test_schema_mismatch_raises(self, r):
        other = Relation("T", ("a", "c"), [(1, 2)])
        for op in (union, difference, intersection):
            with pytest.raises(SchemaError):
                op(r, other)

    def test_schema_order_matters(self, r):
        other = Relation("T", ("b", "a"), [(2, 1)])
        with pytest.raises(SchemaError):
            union(r, other)


class TestCartesianProduct:
    def test_product_size(self):
        r = Relation("R", ("a",), [(1,), (2,)])
        s = Relation("S", ("b",), [(8,), (9,)])
        assert len(cartesian_product(r, s)) == 4

    def test_product_schema(self):
        r = Relation("R", ("a",), [(1,)])
        s = Relation("S", ("b",), [(2,)])
        assert cartesian_product(r, s).schema.attributes == ("a", "b")

    def test_overlapping_schema_raises(self, r, s):
        with pytest.raises(SchemaError):
            cartesian_product(r, s)


class TestSemijoinAntijoin:
    def test_semijoin_keeps_matching(self):
        r = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        s = Relation("S", ("b", "c"), [(2, 0)])
        assert set(semijoin(r, s)) == {(1, 2)}

    def test_antijoin_keeps_nonmatching(self):
        r = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        s = Relation("S", ("b", "c"), [(2, 0)])
        assert set(antijoin(r, s)) == {(3, 4)}

    def test_semijoin_disjoint_nonempty_right_keeps_all(self, r):
        s = Relation("S", ("z",), [(0,)])
        assert set(semijoin(r, s)) == set(r)

    def test_semijoin_disjoint_empty_right_keeps_none(self, r):
        s = Relation("S", ("z",))
        assert len(semijoin(r, s)) == 0

    def test_antijoin_disjoint_empty_right_keeps_all(self, r):
        s = Relation("S", ("z",))
        assert set(antijoin(r, s)) == set(r)

    def test_semijoin_antijoin_partition(self):
        r = Relation("R", ("a", "b"), [(i, i % 3) for i in range(9)])
        s = Relation("S", ("b",), [(0,), (1,)])
        kept = set(semijoin(r, s))
        dropped = set(antijoin(r, s))
        assert kept | dropped == set(r)
        assert kept & dropped == set()


class TestNaiveMultiwayJoin:
    def test_zero_relations_gives_identity(self):
        out = naive_multiway_join([])
        assert len(out) == 1
        assert out.schema.arity == 0

    def test_single_relation_passthrough(self, r):
        assert set(naive_multiway_join([r])) == set(r)

    def test_triangle_join(self):
        r = Relation("R", ("a", "b"), [(1, 2), (2, 3)])
        s = Relation("S", ("b", "c"), [(2, 3), (3, 1)])
        t = Relation("T", ("a", "c"), [(1, 3), (2, 1)])
        out = naive_multiway_join([r, s, t])
        assert set(out.project(["a", "b", "c"])) == {(1, 2, 3), (2, 3, 1)}

    def test_empty_input_relation_gives_empty_result(self, r):
        empty = Relation("E", ("b", "z"))
        assert len(naive_multiway_join([r, empty])) == 0


class TestSelectIn:
    def test_keeps_only_listed_values(self, r):
        assert set(select_in(r, "a", {1})) == {(1, 2)}

    def test_empty_value_set(self, r):
        assert len(select_in(r, "a", set())) == 0
