"""Tests for repro.relational.relation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RelationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def r():
    return Relation("R", ("a", "b"), [(1, 10), (1, 20), (2, 10)])


class TestConstruction:
    def test_duplicates_removed(self):
        r = Relation("R", ("a",), [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_arity_mismatch_raises(self):
        with pytest.raises(RelationError):
            Relation("R", ("a", "b"), [(1,)])

    def test_accepts_schema_object(self):
        r = Relation("R", Schema(["a"]), [(1,)])
        assert r.schema.attributes == ("a",)

    def test_rows_accept_lists(self):
        r = Relation("R", ("a", "b"), [[1, 2]])
        assert (1, 2) in r

    def test_empty_relation(self):
        r = Relation("R", ("a",))
        assert len(r) == 0

    def test_nullary_relation_with_empty_tuple(self):
        r = Relation("R", (), [()])
        assert len(r) == 1

    def test_from_dicts(self):
        r = Relation.from_dicts("R", ("a", "b"), [{"a": 1, "b": 2}])
        assert (1, 2) in r

    def test_from_dicts_missing_key_raises(self):
        with pytest.raises(RelationError):
            Relation.from_dicts("R", ("a", "b"), [{"a": 1}])


class TestContainerProtocol:
    def test_len(self, r):
        assert len(r) == 3

    def test_contains(self, r):
        assert (1, 10) in r
        assert (9, 9) not in r

    def test_iteration_yields_all_rows(self, r):
        assert set(r) == {(1, 10), (1, 20), (2, 10)}

    def test_sorted_rows_deterministic(self, r):
        assert r.sorted_rows() == [(1, 10), (1, 20), (2, 10)]

    def test_equality_ignores_name(self, r):
        other = Relation("S", ("a", "b"), [(1, 10), (1, 20), (2, 10)])
        assert r == other

    def test_equality_respects_schema_order(self, r):
        other = Relation("R", ("b", "a"), [(10, 1), (20, 1), (10, 2)])
        assert r != other

    def test_hashable(self, r):
        assert hash(r) == hash(r.with_name("S"))

    def test_with_name_shares_rows(self, r):
        assert r.with_name("S").rows is r.rows

    def test_to_dicts(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        assert r.to_dicts() == [{"a": 1, "b": 2}]


class TestAlgebraMethods:
    def test_project_removes_duplicates(self, r):
        assert set(r.project(["a"])) == {(1,), (2,)}

    def test_project_reorders(self, r):
        assert (10, 1) in r.project(["b", "a"])

    def test_select_predicate(self, r):
        kept = r.select(lambda t: t["a"] == 1)
        assert set(kept) == {(1, 10), (1, 20)}

    def test_select_eq(self, r):
        assert set(r.select_eq("b", 10)) == {(1, 10), (2, 10)}

    def test_rename(self, r):
        renamed = r.rename({"a": "x"})
        assert renamed.schema.attributes == ("x", "b")
        assert set(renamed) == set(r)

    def test_distinct_values(self, r):
        assert r.distinct_values("a") == {1, 2}

    def test_natural_join_on_shared(self):
        r = Relation("R", ("a", "b"), [(1, 2), (2, 3)])
        s = Relation("S", ("b", "c"), [(2, 9), (2, 8), (7, 7)])
        out = r.natural_join(s)
        assert out.schema.attributes == ("a", "b", "c")
        assert set(out) == {(1, 2, 9), (1, 2, 8)}

    def test_natural_join_no_shared_is_product(self):
        r = Relation("R", ("a",), [(1,), (2,)])
        s = Relation("S", ("b",), [(9,)])
        assert len(r.natural_join(s)) == 2

    def test_natural_join_same_schema_is_intersection(self):
        r = Relation("R", ("a",), [(1,), (2,)])
        s = Relation("S", ("a",), [(2,), (3,)])
        assert set(r.natural_join(s)) == {(2,)}


@given(
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=25),
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=25),
)
def test_natural_join_matches_nested_loop(left_rows, right_rows):
    """Hash-based natural join equals the brute-force definition."""
    r = Relation("R", ("a", "b"), left_rows)
    s = Relation("S", ("b", "c"), right_rows)
    expected = {
        (a, b, c)
        for (a, b) in left_rows
        for (b2, c) in right_rows
        if b == b2
    }
    assert set(r.natural_join(s)) == expected
