"""Tests for the datalog-style conjunctive query front-end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.instrumentation import JoinStats
from repro.relational.catalog import Database
from repro.relational.query import parse_cq
from repro.relational.relation import Relation


@pytest.fixture
def db():
    return Database([
        Relation("R", ("a", "b"), [(1, 2), (2, 3), (1, 4)]),
        Relation("S", ("b", "c"), [(2, 3), (3, 1), (4, 4)]),
        Relation("T", ("a", "c"), [(1, 3), (2, 1), (9, 9)]),
        Relation("Edge", ("src", "dst"),
                 [(1, 2), (2, 3), (3, 1), (1, 1)]),
        Relation("Label", ("node", "tag"),
                 [(1, "x"), (2, "y"), (3, "x")]),
    ])


class TestParsing:
    def test_simple_query(self):
        q = parse_cq("Q(x, y) :- R(x, y)")
        assert q.name == "Q"
        assert q.head == ("x", "y")
        assert q.body[0].relation == "R"

    def test_constants_parsed(self):
        q = parse_cq("Q(x) :- Label(x, 'x'), Edge(x, 1)")
        label_atom, edge_atom = q.body
        assert label_atom.terms[1].value == "x"
        assert not label_atom.terms[1].is_variable
        assert edge_atom.terms[1].value == 1

    def test_negative_and_float_constants(self):
        q = parse_cq("Q(x) :- R(x, -3), S(x, 2.5)")
        assert q.body[0].terms[1].value == -3
        assert q.body[1].terms[1].value == 2.5

    def test_nullary_head(self):
        q = parse_cq("Q() :- R(x, y)")
        assert q.head == ()

    def test_variables_in_first_appearance_order(self):
        q = parse_cq("Q(z) :- R(z, y), S(y, x)")
        assert q.variables() == ("z", "y", "x")

    @pytest.mark.parametrize("bad", [
        "Q(x)",
        "Q(x) :-",
        "Q(x) :- R(x",
        "Q(x) :- R(x) extra",
        "Q(1) :- R(x, y)",
        "Q(z) :- R(x, y)",          # unbound head variable
    ])
    def test_malformed_queries_raise(self, bad):
        with pytest.raises(QueryError):
            parse_cq(bad)


class TestEvaluation:
    def test_triangle(self, db):
        q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c), T(a, c)")
        assert set(q.evaluate(db)) == {(1, 2, 3), (2, 3, 1)}

    def test_projection(self, db):
        q = parse_cq("Q(a) :- R(a, b), S(b, c), T(a, c)")
        assert set(q.evaluate(db)) == {(1,), (2,)}

    def test_constant_selection(self, db):
        q = parse_cq("Q(y) :- R(1, y)")
        assert set(q.evaluate(db)) == {(2,), (4,)}

    def test_string_constant(self, db):
        q = parse_cq("Q(n) :- Label(n, 'x')")
        assert set(q.evaluate(db)) == {(1,), (3,)}

    def test_repeated_variable_in_atom(self, db):
        # self-loops only
        q = parse_cq("Q(x) :- Edge(x, x)")
        assert set(q.evaluate(db)) == {(1,)}

    def test_two_hop_path(self, db):
        q = parse_cq("Q(x, z) :- Edge(x, y), Edge(y, z)")
        out = set(q.evaluate(db))
        assert (1, 3) in out and (2, 1) in out

    def test_all_algorithms_agree(self, db):
        q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c), T(a, c)")
        leapfrog = q.evaluate(db, algorithm="leapfrog")
        generic = q.evaluate(db, algorithm="generic")
        binary = q.evaluate(db, algorithm="binary")
        assert leapfrog == generic == binary

    def test_unknown_algorithm_raises(self, db):
        q = parse_cq("Q(x, y) :- R(x, y)")
        with pytest.raises(QueryError):
            q.evaluate(db, algorithm="quantum")

    def test_arity_mismatch_raises(self, db):
        q = parse_cq("Q(x) :- R(x)")
        with pytest.raises(QueryError):
            q.evaluate(db)

    def test_unknown_relation_raises(self, db):
        q = parse_cq("Q(x) :- Missing(x)")
        with pytest.raises(QueryError):
            q.evaluate(db)

    def test_stats_threaded(self, db):
        q = parse_cq("Q(x, z) :- Edge(x, y), Edge(y, z)")
        stats = JoinStats()
        q.evaluate(db, stats=stats)
        assert stats.stages


@settings(max_examples=40, deadline=None)
@given(
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15),
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15),
)
def test_cq_matches_reference_join(r_rows, s_rows):
    db = Database([Relation("R", ("a", "b"), r_rows),
                   Relation("S", ("b", "c"), s_rows)])
    q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)")
    expected = db["R"].natural_join(db["S"]).project(("a", "b", "c"))
    for algorithm in ("leapfrog", "generic", "binary"):
        assert q.evaluate(db, algorithm=algorithm) == expected
