"""Tests for repro.relational.schema."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational.schema import Schema, sort_key, tuple_sort_key


class TestSchemaConstruction:
    def test_attributes_preserved_in_order(self):
        s = Schema(["b", "a", "c"])
        assert s.attributes == ("b", "a", "c")

    def test_arity(self):
        assert Schema(["x", "y"]).arity == 2

    def test_empty_schema_allowed(self):
        assert Schema(()).arity == 0

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", ""])

    def test_non_string_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", 3])

    def test_accepts_generator(self):
        s = Schema(c for c in "abc")
        assert s.attributes == ("a", "b", "c")


class TestSchemaAccess:
    def test_index(self):
        s = Schema(["a", "b", "c"])
        assert s.index("b") == 1

    def test_index_missing_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).index("z")

    def test_contains(self):
        s = Schema(["a", "b"])
        assert "a" in s
        assert "z" not in s

    def test_iteration_order(self):
        assert list(Schema(["c", "a"])) == ["c", "a"]

    def test_getitem(self):
        assert Schema(["a", "b"])[1] == "b"

    def test_len(self):
        assert len(Schema(["a", "b", "c"])) == 3

    def test_positions(self):
        s = Schema(["a", "b", "c"])
        assert s.positions(["c", "a"]) == (2, 0)

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))


class TestSchemaDerivation:
    def test_project(self):
        s = Schema(["a", "b", "c"]).project(["c", "b"])
        assert s.attributes == ("c", "b")

    def test_project_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).project(["b"])

    def test_rename(self):
        s = Schema(["a", "b"]).rename({"a": "x"})
        assert s.attributes == ("x", "b")

    def test_rename_collision_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a", "b"]).rename({"a": "b"})

    def test_common_in_left_order(self):
        left = Schema(["c", "a", "b"])
        right = Schema(["b", "c"])
        assert left.common(right) == ("c", "b")

    def test_union_keeps_left_then_new(self):
        s = Schema(["a", "b"]).union(Schema(["b", "c"]))
        assert s.attributes == ("a", "b", "c")

    def test_restrict_order(self):
        s = Schema(["b", "d"])
        assert s.restrict_order(["a", "b", "c", "d"]) == ("b", "d")

    def test_restrict_order_incomplete_raises(self):
        with pytest.raises(SchemaError):
            Schema(["b", "z"]).restrict_order(["a", "b", "c"])


class TestSortKey:
    def test_ints_sort_numerically(self):
        assert sorted([3, 1, 2], key=sort_key) == [1, 2, 3]

    def test_mixed_ints_and_strings_do_not_raise(self):
        values = ["b", 2, "a", 1]
        assert sorted(values, key=sort_key) == [1, 2, "a", "b"]

    def test_bools_sort_with_ints(self):
        assert sorted([2, True, 0], key=sort_key) == [0, True, 2]

    def test_floats_sort_with_ints(self):
        assert sorted([1.5, 1, 2], key=sort_key) == [1, 1.5, 2]

    def test_tuple_sort_key_lexicographic(self):
        rows = [(1, "b"), (1, "a"), (0, "z")]
        assert sorted(rows, key=tuple_sort_key) == [(0, "z"), (1, "a"), (1, "b")]

    def test_unknown_type_sorts_last(self):
        class Blob:
            def __repr__(self):
                return "blob"

        assert sorted([Blob(), 1, "x"], key=sort_key)[-1].__class__ is Blob

    @given(st.lists(st.one_of(st.integers(), st.text(max_size=5))))
    def test_sort_key_total_order_is_consistent(self, values):
        once = sorted(values, key=sort_key)
        assert sorted(once, key=sort_key) == once
