"""Tests for grouping and aggregation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational.aggregates import (
    agg_avg,
    agg_count,
    agg_count_distinct,
    agg_max,
    agg_min,
    agg_sum,
    group_by,
    order_by,
    summarize,
    top_k,
)
from repro.relational.relation import Relation


@pytest.fixture
def sales():
    return Relation("sales", ("cat", "item", "price"), [
        ("a", "pen", 10), ("a", "ink", 20), ("a", "pen", 30),
        ("b", "mug", 5),
    ])


class TestGroupBy:
    def test_sum(self, sales):
        out = group_by(sales, ["cat"], {"total": agg_sum("price")})
        assert set(out) == {("a", 60), ("b", 5)}

    def test_count(self, sales):
        out = group_by(sales, ["cat"], {"n": agg_count()})
        assert set(out) == {("a", 3), ("b", 1)}

    def test_count_distinct(self, sales):
        out = group_by(sales, ["cat"],
                       {"items": agg_count_distinct("item")})
        assert set(out) == {("a", 2), ("b", 1)}

    def test_min_max(self, sales):
        out = group_by(sales, ["cat"], {"lo": agg_min("price"),
                                        "hi": agg_max("price")})
        assert set(out) == {("a", 10, 30), ("b", 5, 5)}

    def test_avg(self, sales):
        out = group_by(sales, ["cat"], {"mean": agg_avg("price")})
        assert set(out) == {("a", 20.0), ("b", 5.0)}

    def test_multiple_keys(self, sales):
        out = group_by(sales, ["cat", "item"], {"n": agg_count()})
        assert ("a", "pen", 2) in out

    def test_empty_keys_like_summarize_but_empty_on_empty(self):
        empty = Relation("E", ("x",))
        assert len(group_by(empty, [], {"n": agg_count()})) == 0

    def test_schema(self, sales):
        out = group_by(sales, ["cat"], {"total": agg_sum("price")})
        assert out.schema.attributes == ("cat", "total")

    def test_unknown_key_raises(self, sales):
        with pytest.raises(SchemaError):
            group_by(sales, ["zzz"], {"n": agg_count()})


class TestSummarize:
    def test_one_row(self, sales):
        out = summarize(sales, {"n": agg_count(), "hi": agg_max("price")})
        assert set(out) == {(4, 30)}

    def test_empty_count_is_zero(self):
        empty = Relation("E", ("x",))
        assert set(summarize(empty, {"n": agg_count()})) == {(0,)}

    def test_empty_min_raises(self):
        empty = Relation("E", ("x",))
        with pytest.raises(ValueError):
            summarize(empty, {"lo": agg_min("x")})


class TestOrderByTopK:
    def test_order_ascending(self, sales):
        ordered = order_by(sales, ["price"])
        assert [row[2] for row in ordered] == [5, 10, 20, 30]

    def test_order_descending(self, sales):
        ordered = order_by(sales, ["price"], descending=True)
        assert ordered[0][2] == 30

    def test_limit(self, sales):
        assert len(order_by(sales, ["price"], limit=2)) == 2

    def test_deterministic_tie_break(self):
        r = Relation("R", ("k", "v"), [(1, "b"), (1, "a")])
        assert order_by(r, ["k"]) == [(1, "a"), (1, "b")]

    def test_top_k(self, sales):
        top = top_k(sales, "price", 2)
        assert [row[2] for row in top] == [30, 20]

    def test_top_k_larger_than_relation(self, sales):
        assert len(top_k(sales, "price", 99)) == 4

    def test_top_k_negative_raises(self, sales):
        with pytest.raises(SchemaError):
            top_k(sales, "price", -1)


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(-10, 10)),
                max_size=30))
def test_group_sum_matches_python(pairs):
    r = Relation("R", ("k", "v"), pairs)
    out = group_by(r, ["k"], {"s": agg_sum("v")})
    expected = {}
    for k, v in set(pairs):  # set semantics!
        expected[k] = expected.get(k, 0) + v
    assert set(out) == {(k, s) for k, s in expected.items()}


@given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=25))
def test_count_partitions_cardinality(rows):
    r = Relation("R", ("k", "v"), rows)
    out = group_by(r, ["k"], {"n": agg_count()})
    assert sum(row[1] for row in out) == len(r)
