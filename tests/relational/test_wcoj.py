"""Tests for the worst-case optimal relational joins (LFTJ + generic join)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.instrumentation import JoinStats
from repro.relational.generic_join import generic_join
from repro.relational.iterators import SortedListIterator, materialize
from repro.relational.leapfrog import leapfrog_intersect, leapfrog_triejoin
from repro.relational.operators import naive_multiway_join
from repro.relational.relation import Relation


class TestLeapfrogIntersect:
    def intersect(self, *sets):
        iterators = [SortedListIterator(s) for s in sets]
        return list(leapfrog_intersect(iterators))

    def test_basic_intersection(self):
        assert self.intersect({1, 3, 5, 7}, {3, 4, 5}, {1, 3, 5}) == [3, 5]

    def test_disjoint(self):
        assert self.intersect({1, 2}, {3, 4}) == []

    def test_identical(self):
        assert self.intersect({2, 4}, {2, 4}) == [2, 4]

    def test_single_iterator(self):
        assert self.intersect({3, 1, 2}) == [1, 2, 3]

    def test_empty_input(self):
        assert self.intersect(set(), {1, 2}) == []

    def test_no_iterators(self):
        assert list(leapfrog_intersect([])) == []

    def test_strings(self):
        assert self.intersect({"a", "b", "c"}, {"b", "c", "d"}) == ["b", "c"]

    @given(st.lists(st.sets(st.integers(0, 30)), min_size=1, max_size=5))
    def test_random_matches_set_intersection(self, sets):
        expected = sorted(set.intersection(*sets)) if sets else []
        assert self.intersect(*sets) == expected

    def test_counts_effort(self):
        stats = JoinStats()
        iterators = [SortedListIterator(range(100)),
                     SortedListIterator(range(0, 200, 2))]
        list(leapfrog_intersect(iterators, stats=stats))
        assert stats.seeks > 0 and stats.comparisons > 0


def triangle_instance():
    r = Relation("R", ("a", "b"), [(1, 2), (2, 3), (1, 4)])
    s = Relation("S", ("b", "c"), [(2, 3), (3, 1), (4, 4)])
    t = Relation("T", ("a", "c"), [(1, 3), (2, 1), (9, 9)])
    return [r, s, t]


class TestLeapfrogTriejoin:
    def test_triangle(self):
        out = leapfrog_triejoin(triangle_instance(), ("a", "b", "c"))
        assert set(out) == {(1, 2, 3), (2, 3, 1)}

    def test_matches_naive_reference(self):
        rels = triangle_instance()
        expected = naive_multiway_join(rels).project(["a", "b", "c"])
        assert leapfrog_triejoin(rels, ("a", "b", "c")) == expected

    def test_any_order_same_result(self):
        rels = triangle_instance()
        expected = set(naive_multiway_join(rels).project(["a", "b", "c"]))
        for order in [("b", "a", "c"), ("c", "b", "a"), ("a", "c", "b")]:
            out = leapfrog_triejoin(rels, order).project(["a", "b", "c"])
            assert set(out) == expected

    def test_default_order(self):
        out = leapfrog_triejoin(triangle_instance())
        assert len(out) == 2

    def test_bad_order_raises(self):
        with pytest.raises(QueryError):
            leapfrog_triejoin(triangle_instance(), ("a", "b"))

    def test_zero_relations(self):
        out = leapfrog_triejoin([])
        assert len(out) == 1

    def test_single_relation_identity(self):
        r = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        assert set(leapfrog_triejoin([r])) == set(r)

    def test_empty_relation_empty_result(self):
        rels = triangle_instance() + [Relation("E", ("a",))]
        assert len(leapfrog_triejoin(rels, ("a", "b", "c"))) == 0

    def test_stats_stage_per_attribute(self):
        stats = JoinStats()
        leapfrog_triejoin(triangle_instance(), ("a", "b", "c"), stats=stats)
        assert [s.label for s in stats.stages] == [
            "level a", "level b", "level c"]

    def test_cartesian_component(self):
        r = Relation("R", ("a",), [(1,), (2,)])
        s = Relation("S", ("b",), [(5,)])
        out = leapfrog_triejoin([r, s], ("a", "b"))
        assert set(out) == {(1, 5), (2, 5)}


class TestGenericJoin:
    def test_triangle(self):
        out = generic_join(triangle_instance(), ("a", "b", "c"))
        assert set(out) == {(1, 2, 3), (2, 3, 1)}

    def test_matches_leapfrog(self):
        rels = triangle_instance()
        assert generic_join(rels, ("a", "b", "c")) == \
            leapfrog_triejoin(rels, ("a", "b", "c"))

    def test_bad_order_raises(self):
        with pytest.raises(QueryError):
            generic_join(triangle_instance(), ("a", "b", "q", "c"))

    def test_zero_relations(self):
        assert len(generic_join([])) == 1

    def test_stats_intermediates_bounded_by_output_times_depth(self):
        stats = JoinStats()
        rels = triangle_instance()
        generic_join(rels, ("a", "b", "c"), stats=stats)
        assert stats.max_intermediate >= 2


def relations_strategy():
    """Random 2-3 small relations over attributes drawn from {a,b,c,d}."""
    schemas = st.sampled_from([
        (("a", "b"), ("b", "c"), ("a", "c")),
        (("a", "b"), ("b", "c"), ("c", "d")),
        (("a", "b", "c"), ("b", "d"), ("a", "d")),
        (("a", "b"), ("c", "d")),
        (("a",), ("a", "b"), ("b",)),
    ])
    rows = st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4),
                             st.integers(0, 4)), max_size=12)

    def build(schema_pick, row_sets):
        rels = []
        for i, schema in enumerate(schema_pick):
            rset = row_sets[i % len(row_sets)]
            rels.append(Relation(f"R{i}", schema,
                                 [t[: len(schema)] for t in rset]))
        return rels

    return st.builds(build, schemas, st.lists(rows, min_size=3, max_size=3))


@settings(max_examples=60, deadline=None)
@given(relations_strategy())
def test_wcoj_algorithms_agree_with_naive(relations):
    """LFTJ == generic join == naive nested-loop join, on random queries."""
    attrs = []
    for rel in relations:
        for attribute in rel.schema:
            if attribute not in attrs:
                attrs.append(attribute)
    expected = set(naive_multiway_join(relations).project(attrs))
    lftj = set(leapfrog_triejoin(relations, attrs))
    gj = set(generic_join(relations, attrs))
    assert lftj == expected
    assert gj == expected


class TestSortedListIterator:
    def test_dedups_and_sorts(self):
        it = SortedListIterator([3, 1, 3, 2])
        assert materialize(it) == [1, 2, 3]

    def test_seek(self):
        it = SortedListIterator([1, 4, 9])
        it.seek(5)
        assert it.key() == 9

    def test_len(self):
        assert len(SortedListIterator([1, 1, 2])) == 2
