"""Tests for Trie.from_rows (the no-materialisation construction path)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RelationError
from repro.relational.relation import Relation
from repro.relational.trie import Trie


class TestFromRows:
    def test_builds_from_generator(self):
        rows = ((i, i % 2) for i in range(4))
        trie = Trie.from_rows("T", ("a", "b"), rows)
        assert trie.root.sorted_keys == [0, 1, 2, 3]

    def test_deduplicates(self):
        trie = Trie.from_rows("T", ("a",), [(1,), (1,), (2,)])
        assert trie.size == 2

    def test_respects_order(self):
        trie = Trie.from_rows("T", ("a", "b"), [(1, 9), (2, 9)],
                              order=("b", "a"))
        assert trie.root.sorted_keys == [9]
        assert trie.root.children[9].sorted_keys == [1, 2]

    def test_bad_order_raises(self):
        with pytest.raises(RelationError):
            Trie.from_rows("T", ("a", "b"), [], order=("a", "z"))

    def test_empty_rows(self):
        trie = Trie.from_rows("T", ("a",), [])
        assert trie.size == 0
        assert not trie.root.children

    def test_size_counts_distinct(self):
        trie = Trie.from_rows("T", ("a", "b"),
                              [(1, 2), (1, 2), (1, 3)])
        assert trie.size == 2

    @given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                   max_size=25))
    def test_equivalent_to_relation_trie(self, rows):
        from_rel = Trie(Relation("R", ("a", "b"), rows))
        from_rows = Trie.from_rows("R", ("a", "b"), iter(rows))
        assert list(from_rel.tuples()) == list(from_rows.tuples())
        assert from_rows.size == len(rows)
