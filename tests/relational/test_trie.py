"""Tests for repro.relational.trie (Trie and TrieIterator)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RelationError
from repro.relational.relation import Relation
from repro.relational.schema import tuple_sort_key
from repro.relational.trie import Trie, TrieIterator


@pytest.fixture
def trie():
    r = Relation("R", ("a", "b"), [(1, 2), (1, 3), (2, 2), (5, 1)])
    return Trie(r, ("a", "b"))


class TestTrieConstruction:
    def test_root_keys_sorted(self, trie):
        assert trie.root.sorted_keys == [1, 2, 5]

    def test_default_order_is_schema_order(self):
        r = Relation("R", ("x", "y"), [(1, 2)])
        assert Trie(r).order == ("x", "y")

    def test_non_permutation_order_rejected(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        with pytest.raises(RelationError):
            Trie(r, ("a", "z"))

    def test_reordered_trie(self):
        r = Relation("R", ("a", "b"), [(1, 2), (3, 2)])
        t = Trie(r, ("b", "a"))
        assert t.root.sorted_keys == [2]
        assert t.root.children[2].sorted_keys == [1, 3]

    def test_tuples_enumerates_sorted(self, trie):
        assert list(trie.tuples()) == [(1, 2), (1, 3), (2, 2), (5, 1)]

    def test_descend(self, trie):
        assert trie.descend([1]).sorted_keys == [2, 3]
        assert trie.descend([9]) is None

    def test_contains_prefix(self, trie):
        assert trie.contains_prefix([1, 3])
        assert not trie.contains_prefix([1, 9])
        assert trie.contains_prefix([])


class TestTrieIterator:
    def test_open_positions_at_first_key(self, trie):
        it = TrieIterator(trie)
        it.open()
        assert it.key() == 1

    def test_next_moves_along_level(self, trie):
        it = TrieIterator(trie)
        it.open()
        it.next()
        assert it.key() == 2

    def test_at_end_after_last(self, trie):
        it = TrieIterator(trie)
        it.open()
        for _ in range(3):
            it.next()
        assert it.at_end()

    def test_open_descends(self, trie):
        it = TrieIterator(trie)
        it.open()
        it.open()
        assert it.key() == 2
        it.next()
        assert it.key() == 3

    def test_up_restores_parent_position(self, trie):
        it = TrieIterator(trie)
        it.open()          # at a=1
        it.open()          # at b=2
        it.up()            # back at a=1
        assert it.key() == 1
        it.next()
        assert it.key() == 2

    def test_seek_forward(self, trie):
        it = TrieIterator(trie)
        it.open()
        it.seek(3)
        assert it.key() == 5

    def test_seek_exact(self, trie):
        it = TrieIterator(trie)
        it.open()
        it.seek(2)
        assert it.key() == 2

    def test_seek_never_moves_backwards(self, trie):
        it = TrieIterator(trie)
        it.open()
        it.next()          # at 2
        it.seek(1)
        assert it.key() == 2

    def test_seek_past_end(self, trie):
        it = TrieIterator(trie)
        it.open()
        it.seek(100)
        assert it.at_end()

    def test_deep_up_down_cycle(self, trie):
        it = TrieIterator(trie)
        it.open()
        it.open()
        it.up()
        it.up()
        it.open()
        assert it.key() == 1

    def test_full_enumeration_via_iterator(self, trie):
        """Drive the iterator manually and recover all tuples."""
        out = []
        it = TrieIterator(trie)
        it.open()
        while not it.at_end():
            a = it.key()
            it.open()
            while not it.at_end():
                out.append((a, it.key()))
                it.next()
            it.up()
            it.next()
        assert out == [(1, 2), (1, 3), (2, 2), (5, 1)]


@given(st.sets(st.tuples(st.integers(0, 8), st.integers(0, 8),
                         st.integers(0, 8)), max_size=40))
def test_trie_tuples_roundtrip(rows):
    """Enumerating a trie recovers exactly the relation, sorted."""
    r = Relation("R", ("a", "b", "c"), rows)
    t = Trie(r)
    assert list(t.tuples()) == sorted(rows, key=tuple_sort_key)


@given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30))
def test_trie_any_order_same_content(rows):
    """A trie under a permuted order stores permuted tuples."""
    r = Relation("R", ("a", "b"), rows)
    t = Trie(r, ("b", "a"))
    assert {(a, b) for (b, a) in t.tuples()} == set(rows)
