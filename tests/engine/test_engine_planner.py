"""Tests for the stats-driven planner (orders, algorithm choice, caches)."""

import pytest

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.data.synthetic import example34_instance
from repro.engine.planner import (
    QueryStatistics,
    cached_relation_stats,
    choose_algorithm,
    choose_order_policy,
    connected_order,
    domain_order,
    plan_query,
    run_query,
    statistics_for,
)
from repro.errors import PlanError
from repro.relational.relation import Relation
from repro.xml.model import XMLDocument, element
from repro.xml.twig_parser import parse_twig


class TestCachedStatistics:
    def test_relation_stats_cached_per_object(self):
        r = Relation("R", ("a",), [(1,), (2,)])
        assert cached_relation_stats(r) is cached_relation_stats(r)

    def test_query_statistics_memoised(self):
        query = MultiModelQuery([Relation("R", ("a",), [(1,)])])
        assert statistics_for(query) is statistics_for(query)

    def test_caches_release_collected_inputs(self):
        """Neither cache pins its inputs: collecting the relation/query
        evicts the entry."""
        import gc
        import weakref

        r = Relation("R", ("a",), [(1,)])
        query = MultiModelQuery([r])
        cached_relation_stats(r)
        statistics_for(query).domain_estimates()
        relation_ref = weakref.ref(r)
        query_ref = weakref.ref(query)
        del r, query
        gc.collect()
        assert relation_ref() is None
        assert query_ref() is None

    def test_domain_estimates_computed_once(self):
        query = MultiModelQuery([Relation("R", ("a", "b"),
                                          [(1, 2), (1, 3)])])
        stats = QueryStatistics(query)
        first = stats.domain_estimates()
        assert first == {"a": 1, "b": 2}
        assert stats.domain_estimates() is first

    def test_twig_domains_counted(self):
        doc = XMLDocument(element("r", element("x", text="7"),
                                  element("x", text="8")))
        query = MultiModelQuery([], [TwigBinding(parse_twig("x"), doc)])
        assert statistics_for(query).domain_estimate("x") == 2


class TestOrderPolicies:
    def test_domain_order_empty_relation_first(self):
        """Empty domains (estimate 0) sort first — the join is empty and
        the expansion should discover that immediately."""
        empty = Relation("E", ("z",))
        full = Relation("R", ("a", "z"), [(i, i) for i in range(5)])
        query = MultiModelQuery([full, empty])
        assert domain_order(query)[0] == "z"

    def test_connected_order_disconnected_hypergraph(self):
        """A disconnected query restarts greedily instead of failing."""
        r = Relation("R", ("a", "b"), [(1, 2)])
        s = Relation("S", ("y", "z"), [(8, 9), (7, 9)])
        query = MultiModelQuery([r, s])
        order = connected_order(query)
        assert sorted(order) == ["a", "b", "y", "z"]
        # Each relation's attributes stay adjacent (no pointless hop to
        # the other component mid-relation).
        positions = {a: i for i, a in enumerate(order)}
        assert abs(positions["a"] - positions["b"]) == 1
        assert abs(positions["y"] - positions["z"]) == 1

    def test_connected_order_empty_domain_component(self):
        query = MultiModelQuery([Relation("E", ("z",)),
                                 Relation("R", ("a",), [(1,)])])
        assert sorted(connected_order(query)) == ["a", "z"]


class TestPlanChoice:
    def test_twig_queries_use_xjoin(self):
        query = example34_instance(2).query
        assert choose_algorithm(query) == "xjoin"
        assert plan_query(query).algorithm == "xjoin"

    def test_relational_queries_use_generic_join(self):
        query = MultiModelQuery([Relation("R", ("a",), [(1,)])])
        assert choose_algorithm(query) == "generic_join"

    def test_skewed_domains_choose_connected_policy(self):
        r = Relation("R", ("a", "b"), [(0, i) for i in range(20)])
        query = MultiModelQuery([r])
        assert choose_order_policy(query) == "connected"

    def test_uniform_domains_keep_appearance_policy(self):
        r = Relation("R", ("a", "b"), [(i, i) for i in range(4)])
        query = MultiModelQuery([r])
        assert choose_order_policy(query) == "appearance"

    def test_unknown_algorithm_rejected(self):
        query = MultiModelQuery([Relation("R", ("a",), [(1,)])])
        with pytest.raises(PlanError):
            plan_query(query, algorithm="quantum_join")

    def test_explicit_order_recorded_as_given(self):
        query = MultiModelQuery([Relation("R", ("a", "b"), [(1, 2)])])
        plan = plan_query(query, order=("b", "a"))
        assert plan.policy == "given"
        assert plan.order == ("b", "a")

    def test_run_query_empty_domain(self):
        query = MultiModelQuery([Relation("E", ("z",)),
                                 Relation("R", ("z",), [(1,)])])
        assert len(run_query(query)) == 0
