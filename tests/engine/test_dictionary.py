"""Tests for the dictionary-encoding layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.dictionary import Dictionary, DictionaryBuilder, encode_rows
from repro.errors import EngineError
from repro.relational.relation import Relation
from repro.relational.schema import sort_key

mixed_values = st.one_of(
    st.integers(-50, 50),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=6),
    st.binary(max_size=4),
    st.none(),
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
)


class TestDictionary:
    def test_round_trip_mixed_types(self):
        domain = [3, "b", 1.5, None, "a", 7, b"x", (1, 2)]
        d = Dictionary("a", domain)
        for value in domain:
            assert d.decode(d.encode(value)) == value

    def test_codes_are_dense_and_value_ordered(self):
        d = Dictionary("a", ["z", 10, 2, "a"])
        assert sorted(d.codes.values()) == [0, 1, 2, 3]
        assert list(d.values) == sorted(d.values, key=sort_key)
        # code order == value order, pairwise.
        for small, large in zip(d.values, d.values[1:]):
            assert d.encode(small) < d.encode(large)

    def test_duplicates_collapse(self):
        d = Dictionary("a", [1, 1, 2, 2, 2])
        assert len(d) == 2

    def test_unknown_value_raises(self):
        d = Dictionary("a", [1, 2])
        with pytest.raises(EngineError):
            d.encode(99)
        assert d.encode_or_none(99) is None

    def test_out_of_range_code_raises(self):
        d = Dictionary("a", [1])
        with pytest.raises(EngineError):
            d.decode(5)

    def test_contains(self):
        d = Dictionary("a", ["x"])
        assert "x" in d
        assert "y" not in d

    @given(st.sets(mixed_values, max_size=30))
    def test_round_trip_random_domains(self, domain):
        d = Dictionary("a", domain)
        assert len(d) == len(domain)
        decoded = {d.decode(code) for code in range(len(d))}
        assert decoded == set(domain)


class TestDictionaryBuilder:
    def test_domains_shared_across_inputs(self):
        r = Relation("R", ("a", "b"), [(1, "x"), (2, "y")])
        builder = DictionaryBuilder()
        builder.add_relation(r)
        builder.add_rows(("a",), [(3,), (1,)])
        builder.add_values("a", [4])
        dictionaries = builder.build()
        assert set(dictionaries) == {"a", "b"}
        assert set(dictionaries["a"].values) == {1, 2, 3, 4}
        assert set(dictionaries["b"].values) == {"x", "y"}

    def test_same_value_same_code_across_sources(self):
        """The join property: one dictionary per attribute means a value
        encodes identically no matter which input contributed it."""
        r = Relation("R", ("a",), [(1,), (2,)])
        s = Relation("S", ("a",), [(2,), (3,)])
        builder = DictionaryBuilder()
        builder.add_relation(r)
        builder.add_relation(s)
        d = builder.build()["a"]
        assert d.encode(2) == d.encode(2)
        assert set(d.values) == {1, 2, 3}


class TestEncodeRows:
    def test_column_selection_and_order(self):
        d_a = Dictionary("a", [10, 20])
        d_b = Dictionary("b", ["x", "y"])
        rows = [(10, "y"), (20, "x")]
        # Encode in reversed attribute order: positions pick the column.
        encoded = encode_rows(rows, (1, 0), (d_b, d_a))
        assert encoded == [(d_b.encode("y"), d_a.encode(10)),
                           (d_b.encode("x"), d_a.encode(20))]

    def test_zero_arity(self):
        assert encode_rows([(), ()], (), ()) == [(), ()]
