"""Every ordering policy yields byte-identical rows.

The adaptive layer's safety property: corrections, bounds and raced
winners influence *plan choice only*. Whatever order policy picks the
expansion order — and whatever operator runs it — the decoded result
must equal the naive oracle on every cross-algorithm scenario,
including the skewed instance built to fool the static statistics.
"""

from __future__ import annotations

import pytest

from repro.core.multimodel import MultiModelQuery
from repro.data.scenarios import figure1_query
from repro.data.synthetic import (
    agm_tight_triangle,
    example33_instance,
    example34_instance,
    skewed_triangle,
)
from repro.engine.adaptive import AdaptivePlanner, FeedbackStore
from repro.engine.planner import attribute_order, run_query

POLICIES = ("appearance", "domain", "connected", "bound", "corrected")


def scenarios() -> list[tuple[str, MultiModelQuery]]:
    return [
        ("figure1", figure1_query()),
        ("example33", example33_instance(2).query),
        ("example34", example34_instance(3).query),
        ("agm triangle", MultiModelQuery(agm_tight_triangle(24), [],
                                         name="T")),
        ("skewed triangle", MultiModelQuery(skewed_triangle(256), [],
                                            name="skewed")),
    ]


@pytest.mark.parametrize("label,query", scenarios(),
                         ids=[label for label, _ in scenarios()])
class TestOrderParity:
    def test_every_policy_matches_the_naive_oracle(self, label, query):
        oracle = query.naive_join()
        for policy in POLICIES:
            order = attribute_order(query, policy)
            result = run_query(query, order=order)
            assert result == oracle, (label, policy, order)

    def test_adaptive_execute_matches_the_naive_oracle(self, label, query):
        oracle = query.naive_join()
        planner = AdaptivePlanner(store=FeedbackStore())
        for _ in range(2):  # raced plan, then the post-feedback plan
            assert planner.execute(query) == oracle, label
