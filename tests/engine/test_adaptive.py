"""Adaptive planner behaviour: store mechanics, bounds, racing,
convergence.

The convergence test is the subsystem's acceptance property: on the
skewed triangle — whose static statistics pick a provably bad expansion
order — the feedback loop must move the planner off that order within a
bounded number of executed queries, and then *stop* re-planning (races
and epoch both hold steady once observations match estimates).
"""

from __future__ import annotations

import pytest

from repro.core.multimodel import MultiModelQuery
from repro.data.synthetic import skewed_triangle
from repro.engine.adaptive import (
    AdaptivePlanner,
    FeedbackStore,
    PlanRacer,
    bound_order,
    estimated_stage_sizes,
    input_versions,
    observed_stage_sizes,
    query_signature,
)
from repro.engine.planner import attribute_order, plan_query, run_query
from repro.errors import PlanError
from repro.instrumentation import JoinStats


def skewed_query(n: int = 512) -> MultiModelQuery:
    return MultiModelQuery(skewed_triangle(n), [], name="skewed")


def observe_once(store: FeedbackStore, query: MultiModelQuery,
                 order: tuple[str, ...]) -> int:
    """Execute *query* in *order* and fold the stats into *store*."""
    stats = JoinStats()
    run_query(query, order=order, stats=stats)
    return store.observe(query, order, stats)


class TestFeedbackStore:
    def test_observation_learns_stage_factors(self):
        query = skewed_query()
        store = FeedbackStore()
        order = attribute_order(query, "connected")  # the bad order
        folded = observe_once(store, query, order)
        assert folded == len(order)
        assert store.observations == 1
        # The 'a' level is wildly over-estimated on the skewed instance
        # (bound d*m*caps vs ~n live tuples), so its factor is < 1.
        estimates = estimated_stage_sizes(query, order)
        last = estimates[-1]
        factor = store.stage_factor(query, last.source, last.attribute,
                                    last.prefix)
        assert factor < 1.0

    def test_corrected_estimates_match_observations(self):
        query = skewed_query()
        store = FeedbackStore()
        order = attribute_order(query, "connected")
        observe_once(store, query, order)
        stats = JoinStats()
        run_query(query, order=order, stats=stats)
        observed = observed_stage_sizes(stats, order)
        corrected = estimated_stage_sizes(query, order, store)
        for estimate in corrected:
            assert estimate.cumulative == \
                pytest.approx(observed[estimate.attribute], rel=0.01)

    def test_stale_version_returns_neutral_factor(self):
        query = skewed_query()
        store = FeedbackStore()
        order = attribute_order(query, "connected")
        observe_once(store, query, order)
        estimates = estimated_stage_sizes(query, order)
        last = estimates[-1]
        assert store.stage_factor(query, last.source, last.attribute,
                                  last.prefix) != 1.0
        # A rebuilt instance shares the signature but not the version
        # stamps (fresh Relation objects): corrections must not leak.
        rebuilt = skewed_query()
        assert query_signature(rebuilt) == query_signature(query)
        assert input_versions(rebuilt) != input_versions(query)
        assert store.stage_factor(rebuilt, last.source, last.attribute,
                                  last.prefix) == 1.0

    def test_inherit_refreshes_stamp_churn_invalidates(self):
        query = skewed_query()
        store = FeedbackStore()
        order = attribute_order(query, "connected")
        observe_once(store, query, order)
        estimates = estimated_stage_sizes(query, order)
        last = estimates[-1]
        learned = store.stage_factor(query, last.source, last.attribute,
                                     last.prefix)
        rebuilt = skewed_query()
        store.note_input_update(rebuilt, last.source, churn=False)
        assert store.stage_factor(rebuilt, last.source, last.attribute,
                                  last.prefix) == learned
        epoch = store.epoch
        store.note_input_update(rebuilt, last.source, churn=True)
        assert store.stage_factor(rebuilt, last.source, last.attribute,
                                  last.prefix) == 1.0
        assert store.epoch > epoch

    def test_epoch_settles_once_observations_repeat(self):
        query = skewed_query()
        store = FeedbackStore()
        order = attribute_order(query, "connected")
        observe_once(store, query, order)
        settled = store.epoch
        for _ in range(3):
            observe_once(store, query, order)
        assert store.epoch == settled

    def test_confirming_first_sample_is_not_material(self):
        # An observation matching the raw estimate must not bump the
        # epoch, however new its key is — otherwise every first contact
        # with a well-estimated query would force a re-race.
        query = MultiModelQuery(skewed_triangle(512), [], name="skewed")
        store = FeedbackStore()
        order = bound_order(query)  # estimates are exact on this order
        epoch = store.epoch
        observe_once(store, query, order)
        assert store.epoch == epoch


class TestBoundOrder:
    def test_bound_order_beats_static_worst_stage(self):
        query = skewed_query()
        static = plan_query(query)
        chosen = bound_order(query)
        assert chosen != static.order
        static_worst = max(e.cumulative for e in
                           estimated_stage_sizes(query, static.order))
        chosen_worst = max(e.cumulative for e in
                           estimated_stage_sizes(query, chosen))
        assert chosen_worst < static_worst

    def test_policies_registered(self):
        query = skewed_query()
        assert attribute_order(query, "bound") == bound_order(query)
        assert attribute_order(query, "corrected")  # resolves, non-empty

    def test_policy_name_collision_rejected(self):
        from repro.engine.planner import register_order_policy

        with pytest.raises(PlanError):
            register_order_policy("bound", lambda query: ())


class TestPlanRacer:
    def test_winner_cached_until_epoch_moves(self):
        query = skewed_query()
        racer = PlanRacer(FeedbackStore())
        first = racer.race(query)
        assert first.raced and racer.races == 1
        second = racer.race(query)
        assert not second.raced
        assert (second.winner.order, second.winner.algorithm) == \
            (first.winner.order, first.winner.algorithm)
        assert racer.races == 1
        racer.store.bump_epoch()
        racer.race(query)
        assert racer.races == 2

    def test_candidates_include_static_guard(self):
        query = skewed_query()
        racer = PlanRacer(FeedbackStore())
        static = plan_query(query)
        plans = {(plan.order, plan.algorithm)
                 for plan in racer.candidates(query)}
        assert (static.order, static.algorithm) in plans


class TestConvergence:
    def test_feedback_switches_off_the_bad_order(self):
        # n=4096 puts the good/bad gap (~2.5x) well past the racer's
        # 1.25x hysteresis band; at smaller n the orders are near-tied
        # and the incumbent may legitimately keep its crown.
        query = skewed_query(4096)
        static = plan_query(query)
        planner = AdaptivePlanner(store=FeedbackStore())
        oracle = run_query(query)
        orders = []
        for _ in range(6):
            result = planner.execute(query)
            assert result == oracle  # parity at every step
            orders.append(planner.plan(query).order)
        # Within the budget the planner has left the static order...
        assert orders[-1] != static.order
        # ...for one that beats it under its own calibrated model...
        store = planner.store
        final_worst = max(e.cumulative for e in
                          estimated_stage_sizes(query, orders[-1], store))
        static_worst = max(e.cumulative for e in
                           estimated_stage_sizes(query, static.order,
                                                 store))
        assert final_worst < static_worst
        # ...and it stays there: the last plans are identical.
        assert orders[-1] == orders[-2] == orders[-3]

    def test_races_stop_once_converged(self):
        query = skewed_query(4096)
        planner = AdaptivePlanner(store=FeedbackStore())
        for _ in range(4):
            planner.execute(query)
        settled = planner.racer.races
        for _ in range(3):
            planner.execute(query)
        assert planner.racer.races == settled
        assert planner.epoch == planner.store.epoch
