"""Cross-engine result equality over shared encoded instances.

The acceptance property of the engine refactor: all four registered
algorithms produce equal *decoded* results on the paper's scenarios —
generic join vs leapfrog on relational instances (one shared
EncodedInstance), and xjoin vs baseline vs the naive oracle on the
Figure 1 / Example 3.3 / Example 3.4 multi-model instances.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multimodel import MultiModelQuery
from repro.data.random_instances import random_multimodel_instance
from repro.data.scenarios import figure1_query
from repro.data.synthetic import (
    agm_tight_triangle,
    example33_instance,
    example34_instance,
)
from repro.engine import (
    EncodedInstance,
    EncodedTrie,
    available_algorithms,
    get_algorithm,
    run_query,
)
from repro.errors import EngineError
from repro.relational.operators import naive_multiway_join
from repro.relational.relation import Relation


class TestEncodedTrie:
    def test_round_trip(self):
        trie = EncodedTrie("T", ("a", "b"), [(1, 2), (0, 5), (1, 0)])
        assert list(trie.tuples()) == [(0, 5), (1, 0), (1, 2)]
        assert trie.size == 3

    def test_keys_sorted_per_node(self):
        trie = EncodedTrie("T", ("a", "b"), [(2, 1), (0, 3), (2, 0)])
        assert list(trie.root.keys) == [0, 2]
        assert list(trie.root.children[2].keys) == [0, 1]

    def test_instance_trie_decodes_back_to_relation(self):
        r = Relation("R", ("a", "b"), [(1, "x"), (2, "y"), (1, "z")])
        instance = EncodedInstance.from_relations([r])
        trie = instance.tries[0]
        decoded = {instance.decode_row(codes) for codes in trie.tuples()}
        assert decoded == set(r.rows)


class TestRegistry:
    def test_all_four_algorithms_registered(self):
        assert set(available_algorithms()) >= {
            "generic_join", "leapfrog", "xjoin", "baseline"}

    def test_unknown_algorithm_raises(self):
        with pytest.raises(EngineError):
            get_algorithm("nested_loop_prayer")

    def test_xjoin_requires_query_instance(self):
        instance = EncodedInstance.from_relations(
            [Relation("R", ("a",), [(1,)])])
        with pytest.raises(EngineError):
            get_algorithm("xjoin").run(instance)

    @pytest.mark.parametrize("algorithm", ["generic_join", "leapfrog"])
    def test_relational_kernels_reject_twig_instances(self, algorithm):
        """The value-join kernels skip twig structure validation, so
        running them on a twig-bearing instance must fail loudly rather
        than return unvalidated tuples."""
        query = example34_instance(2).query
        instance = EncodedInstance.from_query(query, query.attributes)
        with pytest.raises(EngineError):
            get_algorithm(algorithm).run(instance)
        with pytest.raises(EngineError):
            run_query(query, algorithm=algorithm)

    @pytest.mark.parametrize("algorithm",
                             ["generic_join", "leapfrog", "xjoin"])
    def test_kernels_reject_trieless_reference_instances(self, algorithm):
        """EncodedInstance.reference carries no tries; every trie-walking
        kernel must refuse it rather than emit a bogus 0-ary result."""
        query = MultiModelQuery([Relation("R", ("a",), [(1,)])],
                                name="rel")
        with pytest.raises(EngineError):
            get_algorithm(algorithm).run(EncodedInstance.reference(query))

    @pytest.mark.parametrize("algorithm", ["generic_join", "leapfrog"])
    def test_relational_instances_from_query_still_run(self, algorithm):
        """A twig-free MultiModelQuery through from_query stays valid
        input for the relational kernels."""
        r = Relation("R", ("a", "b"), [(1, 2), (2, 2)])
        query = MultiModelQuery([r], name="rel")
        instance = EncodedInstance.from_query(query, query.attributes)
        result = get_algorithm(algorithm).run(instance)
        assert set(result) == set(r.rows)


class TestRelationalCrossEngine:
    def test_shared_instance_triangle(self):
        """One encoded instance, two relational operators, equal output."""
        relations = agm_tight_triangle(25)
        instance = EncodedInstance.from_relations(relations,
                                                  ("a", "b", "c"))
        gj = get_algorithm("generic_join").run(instance)
        lftj = get_algorithm("leapfrog").run(instance)
        expected = naive_multiway_join(relations).project(["a", "b", "c"])
        assert gj == lftj == expected

    def test_mixed_type_domains(self):
        r = Relation("R", ("a", "b"), [(1, "x"), ("one", "x"), (2.5, "y")])
        s = Relation("S", ("b", "c"), [("x", True), ("y", None)])
        instance = EncodedInstance.from_relations([r, s])
        gj = get_algorithm("generic_join").run(instance)
        lftj = get_algorithm("leapfrog").run(instance)
        expected = naive_multiway_join([r, s]).project(["a", "b", "c"])
        assert gj == lftj == expected


SCENARIOS = {
    "figure1": lambda: figure1_query(),
    "example33": lambda: example33_instance(3).query,
    "example34": lambda: example34_instance(3).query,
}


class TestMultiModelCrossEngine:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_xjoin_equals_baseline_on_shared_instance(self, scenario):
        query = SCENARIOS[scenario]()
        instance = EncodedInstance.from_query(query, query.attributes)
        xj = get_algorithm("xjoin").run(instance)
        base = get_algorithm("baseline").run(instance)
        naive = query.naive_join()
        assert xj == naive
        assert base.project(query.attributes) == naive

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_planner_run_query_agrees(self, scenario):
        query = SCENARIOS[scenario]()
        assert run_query(query) == query.naive_join()

    def test_explicit_algorithm_override(self):
        query = figure1_query()
        assert run_query(query, algorithm="baseline") == \
            run_query(query, algorithm="xjoin")


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_run_query_matches_naive_on_random_instances(seed):
    query = random_multimodel_instance(seed)
    assert run_query(query) == query.naive_join()


class TestParallelCrossEngine:
    """The parallel executor joins the cross-engine parity contract:
    every registered algorithm, same answers, now across workers too
    (the full matrix lives in ``tests/parallel/test_parallel_parity``).
    """

    def test_parallel_kernels_on_shared_instance(self):
        from repro.parallel.executor import ParallelExecutor

        instance = EncodedInstance.from_relations(
            agm_tight_triangle(30), ("a", "b", "c"))
        executor = ParallelExecutor(2)
        reference = get_algorithm("generic_join").run(instance)
        for algorithm in ("generic_join", "leapfrog"):
            assert executor.run_join(instance, algorithm) == reference

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_run_query_workers_agrees(self, scenario):
        query = SCENARIOS[scenario]()
        assert run_query(query, workers=2) == query.naive_join()
