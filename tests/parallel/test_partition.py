"""Partition-boundary behavior: slicing, weights, skew, empty ranges."""

import pytest

from repro.data.synthetic import agm_tight_triangle
from repro.engine.encoded import EncodedInstance
from repro.engine.interface import get_algorithm
from repro.parallel.partition import (
    choose_morsel_count,
    code_slices,
    posting_slices,
    top_level_weights,
    value_segments,
)
from repro.parallel.slicing import sliced_instance, sliced_trie
from repro.relational.relation import Relation
from repro.xml.columnar import columnar
from repro.xml.twig_parser import parse_twig
from repro.xml.xmark import xmark_document


def triangle_instance(n=40):
    return EncodedInstance.from_relations(agm_tight_triangle(n),
                                          ("a", "b", "c"))


class TestWeights:
    def test_weights_count_rows_exactly(self):
        r = Relation("R", ("a", "b"), [(0, 1), (0, 2), (0, 3), (5, 1)])
        instance = EncodedInstance.from_relations([r])
        weights = top_level_weights(instance)
        # code(0) holds 3 rows, code(5) holds 1.
        by_value = {instance.decode_value(0, code): count
                    for code, count in weights.items()}
        assert by_value == {0: 3, 5: 1}

    def test_weights_sum_over_level0_tries(self):
        instance = triangle_instance(10)
        weights = top_level_weights(instance)
        # R(a,b) and T(a,c) bind level 0; S(b,c) does not.
        total = sum(weights.values())
        assert total == len(instance.relations[0]) \
            + len(instance.relations[2])

    def test_zero_depth_instance_has_no_weights(self):
        r = Relation("R", (), [()])
        instance = EncodedInstance.from_relations([r])
        assert top_level_weights(instance) == {}
        assert code_slices(instance, 4) == []


class TestCodeSlices:
    def test_slices_cover_and_are_disjoint(self):
        instance = triangle_instance(50)
        weights = top_level_weights(instance)
        slices = code_slices(instance, 7)
        assert 1 <= len(slices) <= 7
        assert slices[0].lo == min(weights)
        assert slices[-1].hi == max(weights) + 1
        for left, right in zip(slices, slices[1:]):
            assert left.hi == right.lo  # contiguous, half-open
        # Every key falls in exactly one slice.
        for code in weights:
            owners = [s for s in slices if s.lo <= code < s.hi]
            assert len(owners) == 1

    def test_single_code_domain_collapses_to_one_slice(self):
        r = Relation("R", ("a", "b"), [(7, i) for i in range(10)])
        instance = EncodedInstance.from_relations([r])
        slices = code_slices(instance, 8)
        assert len(slices) == 1
        assert slices[0].weight == 10

    def test_morsel_count_never_exceeds_domain(self):
        instance = triangle_instance(3)
        assert len(code_slices(instance, 64)) <= \
            len(top_level_weights(instance))

    def test_skewed_domain_isolates_heavy_key(self):
        # One top-level value holds > 90% of the tuples.
        rows = [(0, j) for j in range(95)] + [(i, 0) for i in range(1, 6)]
        r = Relation("R", ("a", "b"), rows)
        instance = EncodedInstance.from_relations([r])
        slices = code_slices(instance, 4)
        heavy = [s for s in slices if s.lo <= 0 < s.hi]
        assert len(heavy) == 1
        # The heavy key gets its own morsel; the light tail is spread
        # over the remaining slices, not glued to the heavy one.
        assert heavy[0].weight == 95
        assert heavy[0].hi == 1
        assert sum(s.weight for s in slices) == 100


class TestSlicedViews:
    def test_sliced_trie_restricts_keys_only(self):
        instance = triangle_instance(10)
        trie = instance.tries[0]
        lo, hi = trie.root.keys[2], trie.root.keys[5]
        view = sliced_trie(trie, lo, hi)
        assert list(view.root.keys) == [k for k in trie.root.keys
                                        if lo <= k < hi]
        assert view.root.children is trie.root.children  # shared

    def test_detached_slice_is_self_contained(self):
        instance = triangle_instance(10)
        trie = instance.tries[0]
        lo, hi = trie.root.keys[1], trie.root.keys[3]
        view = sliced_trie(trie, lo, hi, detach=True)
        assert set(view.root.children) == set(view.root.keys)

    def test_empty_slice_yields_empty_result(self):
        instance = triangle_instance(10)
        top = max(max(t.root.keys) for t in instance.tries)
        empty = sliced_instance(instance, top + 10, top + 20)
        for algorithm in ("generic_join", "leapfrog"):
            assert len(get_algorithm(algorithm).run(empty)) == 0

    def test_union_of_slices_equals_serial(self):
        instance = triangle_instance(30)
        serial = get_algorithm("generic_join").run(instance)
        rows = set()
        for piece in code_slices(instance, 5):
            part = get_algorithm("generic_join").run(
                sliced_instance(instance, piece.lo, piece.hi))
            assert rows.isdisjoint(part.rows)  # slices never overlap
            rows |= part.rows
        assert rows == serial.rows


class TestPostingSlices:
    def test_cover_and_region(self):
        document = xmark_document(1.0, seed=7)
        view = columnar(document)
        twig = parse_twig("p=person(/nm=name)")
        posting = view.stream(twig.nodes()[0])
        slices = posting_slices(posting, 4)
        assert sum(s.weight for s in slices) >= len(posting.nids)
        covered = 0
        for piece in slices:
            members = [i for i in range(len(posting.nids))
                       if piece.lo <= posting.starts[i] < piece.hi]
            covered += len(members)
            assert members, "no empty posting slices"
            assert piece.region_hi == max(posting.ends[i]
                                          for i in members)
        assert covered == len(posting.nids)

    def test_absent_tag_has_no_slices(self):
        document = xmark_document(0.5, seed=7)
        view = columnar(document)
        twig = parse_twig("z=zeppelin")
        assert posting_slices(view.stream(twig.nodes()[0]), 4) == []


class TestSizing:
    @pytest.mark.parametrize("workers,domain,expected", [
        (0, 100, 1), (1, 100, 1), (4, 0, 1), (4, 1, 1),
        (4, 100, 16), (4, 6, 6), (2, 3, 3),
    ])
    def test_choose_morsel_count(self, workers, domain, expected):
        assert choose_morsel_count(workers, domain) == expected

    def test_value_segments_partition_the_domain(self):
        values = list(range(17))
        segments = value_segments(values, 4)
        assert [v for segment in segments for v in segment] == values
        assert len(segments) <= 4
        assert value_segments([], 4) == []
