"""The file-backed ``mmap`` transport: by-path attachment end to end.

The disk-backed sibling of the shm transport tests: document and
instance publish/attach round trips through
:mod:`repro.parallel.mmapfile`, the executor's ``mmap`` routing
(including the ``naive`` oracle, which the shm transport cannot
serve), a 2-worker **spawn** pool smoke for twig and join jobs,
zero-copy by-path republication of a streamed arena, and a clean temp
directory after every run.
"""

from __future__ import annotations

import pytest

from repro.buffers.mmapfile import FileArena, leaked_arena_files
from repro.core.multimodel import MultiModelQuery
from repro.engine.encoded import EncodedInstance
from repro.engine.interface import get_algorithm
from repro.errors import TransportError
from repro.parallel.executor import ParallelExecutor, available_transports
from repro.parallel.mmapfile import (
    attach_document,
    attach_instance,
    publish_document,
    publish_instance,
)
from repro.relational.relation import Relation
from repro.xml.arenaview import ArenaDocument, attach_arena_document
from repro.xml.columnar import columnar
from repro.xml.interface import get_twig_algorithm
from repro.xml.parser import parse_document
from repro.xml.streaming import stream_document
from repro.xml.twig_parser import parse_twig
from repro.xml.xmark import xmark_stream_chunks


def stream_corpus(factor=0.5, seed=11):
    text = "".join(xmark_stream_chunks(factor, seed=seed))
    return text, parse_document(text)


def triangle_instance(n=40):
    import random

    rng = random.Random(3)
    edges = sorted({(rng.randrange(n), rng.randrange(n))
                    for _ in range(4 * n)})
    relations = [Relation("R", ("a", "b"), edges),
                 Relation("S", ("b", "c"), edges),
                 Relation("T", ("a", "c"), edges)]
    return EncodedInstance.from_relations(relations, ("a", "b", "c"))


ITEM_TWIG = "i=item(/n=name, //c=incategory)"


class TestRoundTrip:
    def test_document_by_path(self):
        _text, document = stream_corpus()
        twig = parse_twig(ITEM_TWIG)
        serial = get_twig_algorithm("twigstack").run(document, twig)
        arena = publish_document(columnar(document))
        try:
            attached_arena, handle, view = attach_document(arena.path)
            assert isinstance(handle, ArenaDocument)
            assert view.size == columnar(document).size
            attached = get_twig_algorithm("twigstack").run(handle, twig)
            assert sorted(attached.rows) == sorted(serial.rows)
            attached_arena.close()
        finally:
            arena.close()
            arena.unlink()
        assert not leaked_arena_files()

    def test_instance_by_path(self):
        instance = triangle_instance()
        serial = get_algorithm("generic_join").run(instance)
        arena = publish_instance(instance, "generic_join")
        try:
            attached_arena, attached = attach_instance(arena.path)
            result = get_algorithm("generic_join").run(attached)
            assert sorted(result.rows) == sorted(serial.rows)
            attached_arena.close()
        finally:
            arena.close()
            arena.unlink()
        assert not leaked_arena_files()

    def test_attach_vanished_path_raises_transport_error(self):
        with pytest.raises(TransportError, match="vanished"):
            attach_document("/tmp/repro-arena-definitely-missing.arena")


class TestExecutorRouting:
    def test_mmap_always_listed(self):
        assert "mmap" in available_transports()

    def test_twig_bearing_join_raises_transport_error(self):
        from repro.core.multimodel import TwigBinding
        from repro.xml.model import XMLDocument, element

        document = XMLDocument(
            element("lib", element("book", element("title", text="a"))))
        twig = parse_twig("b=book(/t=title)")
        relation = Relation("R", ("x", "t"),
                            [(x, t) for x in range(40)
                             for t in ("a", "b", "c", "d")])
        query = MultiModelQuery([relation], [TwigBinding(twig, document)],
                                name="Q")
        instance = EncodedInstance.from_query(query, ("x", "t", "b"))
        executor = ParallelExecutor(2, transport="mmap")
        with pytest.raises(TransportError):
            executor.run_join(instance, "xjoin")


class TestSpawnPoolSmoke:
    @pytest.mark.parametrize("algorithm", ["twigstack", "naive"])
    def test_two_worker_mmap_twig_parity(self, algorithm):
        """The pool smoke — and proof the navigational ``naive`` oracle
        runs attached (the mmap view's node stubs carry it; shm's bare
        handle cannot)."""
        _text, document = stream_corpus()
        twig = parse_twig(ITEM_TWIG)
        serial = get_twig_algorithm("twigstack").run(document, twig)
        executor = ParallelExecutor(2, transport="mmap")
        parallel = executor.run_twig(document, twig, algorithm)
        assert sorted(parallel.rows) == sorted(serial.rows)
        assert not leaked_arena_files()

    def test_two_worker_mmap_join_parity(self):
        instance = triangle_instance()
        serial = get_algorithm("generic_join").run(instance)
        executor = ParallelExecutor(2, transport="mmap")
        parallel = executor.run_join(instance, "generic_join")
        assert sorted(parallel.rows) == sorted(serial.rows)
        assert not leaked_arena_files()


class TestStreamedArenaByPath:
    def test_streamed_corpus_republishes_zero_copy(self):
        """A streamed-build arena served through the pool by its own
        path: the executor must not copy, not unlink the caller-owned
        file, and the rows must match the in-memory build."""
        text, document = stream_corpus()
        twig = parse_twig(ITEM_TWIG)
        serial = get_twig_algorithm("twigstack").run(document, twig)
        arena = stream_document([text])
        try:
            handle, _view = attach_arena_document(arena)
            executor = ParallelExecutor(2, transport="mmap")
            parallel = executor.run_twig(handle, twig, "twigstack")
            assert sorted(parallel.rows) == sorted(serial.rows)
            # The caller-owned arena survived the pool run.
            reopened = FileArena.attach(arena.path)
            assert reopened.meta["size"] == arena.meta["size"]
            reopened.close()
        finally:
            arena.close()
            arena.unlink()
        assert not leaked_arena_files()
