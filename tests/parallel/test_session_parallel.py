"""Partitioned query sessions under interleaved update streams.

The update-routing acceptance property: a ``QuerySession(workers=N)``
maintains exactly the same answer as the serial session and the
rebuild-from-scratch oracle through arbitrary interleavings of tuple
and subtree updates — deletes routed to owner buckets, inserts routed
by their own partition value, broadcasts when the updated input does
not bind the partition attribute.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "updates"))
from harness import clone_query, seeded_rng  # noqa: E402

from repro.core.multimodel import MultiModelQuery, TwigBinding  # noqa: E402
from repro.data.synthetic import agm_tight_triangle  # noqa: E402
from repro.engine.planner import run_query  # noqa: E402
from repro.parallel.answers import PartitionedAnswer, owner_of  # noqa: E402
from repro.relational.relation import Relation  # noqa: E402
from repro.updates.session import QuerySession  # noqa: E402
from repro.xml.model import XMLDocument, XMLNode  # noqa: E402
from repro.xml.twig_parser import parse_twig  # noqa: E402

WORKERS = 2


class TestPartitionedAnswer:
    def test_routing_is_stable_and_total(self):
        answer = PartitionedAnswer(partitions=4)
        rows = [(value, value * 2) for value in range(50)]
        answer.update(rows)
        assert len(answer) == 50
        assert set(answer.rows()) == set(rows)
        for row in rows:
            assert row in answer
            assert answer.owner(row[0]) == owner_of(row[0], 4)

    def test_routed_discard_equals_broadcast(self):
        rows = [(v, v % 3) for v in range(30)]
        routed = PartitionedAnswer(rows, partitions=4)
        broadcast = PartitionedAnswer(rows, partitions=4)
        dead = {(7, 1), (8, 2), (9, 0)}
        # positions (0, 1): the full row restricts to itself.
        routed.discard_restricting((0, 1), dead,
                                   owner_values=[7, 8, 9])
        broadcast.discard_restricting((0, 1), dead)
        assert set(routed.rows()) == set(broadcast.rows())
        assert len(routed) == 27

    def test_single_partition_degenerates_to_a_set(self):
        answer = PartitionedAnswer([(1,), (2,)], partitions=1)
        assert answer.partitions == 1
        assert answer.buckets[0] == {(1,), (2,)}


def relational_query(n=25):
    return MultiModelQuery(
        [Relation(r.name, r.schema, r.rows)
         for r in agm_tight_triangle(n)], name="T")


class TestSessionParity:
    def test_relational_stream(self):
        rng = seeded_rng("parallel-session-relational")
        serial = QuerySession(relational_query())
        parallel = QuerySession(relational_query(), workers=WORKERS)
        live: list[tuple] = []
        for step in range(30):
            if live and rng.random() < 0.4:
                name, row = live.pop(rng.randrange(len(live)))
                serial.delete(name, row)
                parallel.delete(name, row)
            else:
                name = rng.choice(["R", "S", "T"])
                row = (rng.randrange(40), rng.randrange(40))
                serial.insert(name, row)
                parallel.insert(name, row)
                live.append((name, row))
            assert parallel.answer() == serial.answer(), step
        oracle = run_query(clone_query(serial.query))
        assert parallel.answer() == oracle

    def test_multimodel_stream_with_subtree_edits(self):
        rng = seeded_rng("parallel-session-multimodel")
        root = XMLNode("lib")
        for index in range(6):
            book = root.add("book")
            book.add("isbn", text=str(index % 4))
            book.add("price", text=str(10 + index))
        twig = parse_twig("b=book(/isbn, //price)")

        def build():
            document = XMLDocument(root.copy())
            rel = Relation("R", ("isbn", "who"),
                           [(str(v), f"u{v}") for v in range(4)])
            return MultiModelQuery([rel],
                                   [TwigBinding(twig, document)],
                                   name="M")

        serial = QuerySession(build())
        parallel = QuerySession(build(), workers=WORKERS)
        inserted: list[int] = []
        for step in range(12):
            kind = rng.choice(["tuple_in", "tuple_out", "subtree",
                               "value"])
            if kind == "tuple_in":
                row = (str(rng.randrange(6)), f"w{step}")
                serial.insert("R", row)
                parallel.insert("R", row)
            elif kind == "tuple_out" and len(serial.query.relations[0]):
                row = sorted(serial.query.relations[0].rows)[0]
                serial.delete("R", row)
                parallel.delete("R", row)
            elif kind == "subtree":
                for session in (serial, parallel):
                    parent = session.query.twigs[0].document.root
                    subtree = XMLNode("book")
                    subtree.add("isbn", text=str(step % 4))
                    subtree.add("price", text=str(100 + step))
                    session.insert_subtree(twig.name, parent, subtree)
                inserted.append(step)
            else:
                for session in (serial, parallel):
                    document = session.query.twigs[0].document
                    node = document.nodes("price")[0]
                    session.change_value(twig.name, node, str(7 + step))
            assert parallel.answer() == serial.answer(), (step, kind)
        oracle = run_query(clone_query(serial.query))
        assert parallel.answer() == oracle

    @pytest.mark.parametrize("workers", [0, 1, 3])
    def test_worker_counts_agree(self, workers):
        baseline = QuerySession(relational_query(10))
        session = QuerySession(relational_query(10), workers=workers)
        session.insert("R", (99, 99))
        baseline.insert("R", (99, 99))
        session.delete("S", (0, 3))
        baseline.delete("S", (0, 3))
        assert session.answer() == baseline.answer()
