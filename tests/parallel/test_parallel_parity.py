"""Parallel vs serial parity for every registered algorithm.

The acceptance property of the parallel subsystem, extending the
cross-algorithm parity suites (``tests/engine/test_cross_engine``,
``tests/xml/test_cross_twig``): for every registered join algorithm and
every registered twig algorithm, the partition-parallel executor's
answer equals the serial answer — over the pool (fork transport, the CI
``--workers 2`` path), the in-process morsel loop (serial transport) and
the pickled-segment transport where it applies.
"""

import pytest

from repro.data.random_instances import random_multimodel_instance
from repro.data.synthetic import agm_tight_triangle, example34_instance
from repro.engine.encoded import EncodedInstance
from repro.engine.interface import available_algorithms, get_algorithm
from repro.engine.planner import attribute_order, plan_query, run_query
from repro.errors import EngineError
from repro.parallel.executor import ParallelExecutor, available_transports
from repro.parallel.morsels import fork_available
from repro.relational.relation import Relation
from repro.xml.interface import available_twig_algorithms, \
    get_twig_algorithm
from repro.xml.twig_parser import parse_twig
from repro.xml.xmark import xmark_document

WORKERS = 2
TRANSPORTS = ["serial"] + (["fork"] if fork_available() else [])


def executor(transport, workers=WORKERS, **kw):
    return ParallelExecutor(workers, transport=transport, **kw)


# ---------------------------------------------------------------------------
# join algorithms
# ---------------------------------------------------------------------------

class TestJoinParity:
    @pytest.mark.parametrize("transport", TRANSPORTS + ["pickle"])
    @pytest.mark.parametrize("algorithm", ["generic_join", "leapfrog"])
    def test_relational_kernels(self, algorithm, transport):
        instance = EncodedInstance.from_relations(
            agm_tight_triangle(40), ("a", "b", "c"))
        serial = get_algorithm(algorithm).run(instance)
        parallel = executor(transport).run_join(instance, algorithm)
        assert parallel == serial

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_every_registered_algorithm_on_multimodel(self, transport):
        instance34 = example34_instance(4)
        query = instance34.query
        expected = query.naive_join()
        encoded = EncodedInstance.from_query(query, attribute_order(query))
        for algorithm in available_algorithms():
            if algorithm in ("generic_join", "leapfrog"):
                continue  # relational kernels reject twig instances
            parallel = executor(transport).run_join(encoded, algorithm)
            assert parallel == expected, (algorithm, transport)

    def test_skewed_domain_parity(self):
        # One partition holds > 90% of the tuples: morsel boundaries
        # must not lose or duplicate the heavy key's results.
        rows = ([(0, j) for j in range(60)]
                + [(i, i) for i in range(1, 5)])
        relations = [Relation("R", ("a", "b"), rows),
                     Relation("S", ("b", "c"), rows),
                     Relation("T", ("a", "c"), rows)]
        instance = EncodedInstance.from_relations(relations,
                                                  ("a", "b", "c"))
        serial = get_algorithm("generic_join").run(instance)
        for transport in TRANSPORTS:
            assert executor(transport).run_join(
                instance, "generic_join") == serial

    def test_empty_input_parity(self):
        relations = [Relation("R", ("a", "b"), [(1, 2)]),
                     Relation("S", ("b", "c"))]
        instance = EncodedInstance.from_relations(relations,
                                                  ("a", "b", "c"))
        serial = get_algorithm("generic_join").run(instance)
        assert executor("serial").run_join(instance,
                                           "generic_join") == serial
        assert len(serial) == 0

    def test_pickle_transport_rejects_twig_instances(self):
        # A twig-bearing instance whose leading attribute has a wide
        # domain (so the run would genuinely partition, not degrade to
        # the serial path, which handles twig instances fine).
        from repro.core.multimodel import MultiModelQuery, TwigBinding
        from repro.xml.parser import parse_document
        from repro.xml.twig_parser import parse_twig

        document = parse_document(
            "<r>" + "".join(f"<x>{i}</x>" for i in range(6)) + "</r>")
        query = MultiModelQuery(
            [Relation("R", ("a", "x"), [(i, i) for i in range(6)])],
            [TwigBinding(parse_twig("x"), document)], name="P")
        encoded = EncodedInstance.from_query(query, attribute_order(query))
        with pytest.raises(EngineError):
            executor("pickle").run_join(encoded, "xjoin", morsels=4)

    def test_pickle_transport_serial_degenerate_runs_fine(self):
        # The same twig-bearing instance with a unit morsel count must
        # fall back to the serial kernel instead of raising.
        query = example34_instance(3).query
        encoded = EncodedInstance.from_query(query, attribute_order(query))
        serial = get_algorithm("xjoin").run(encoded)
        assert executor("pickle").run_join(encoded, "xjoin",
                                           morsels=1) == serial

    def test_workers_zero_and_one_run_serially(self):
        instance = EncodedInstance.from_relations(
            agm_tight_triangle(20), ("a", "b", "c"))
        serial = get_algorithm("generic_join").run(instance)
        for workers in (0, 1):
            assert ParallelExecutor(workers).run_join(
                instance, "generic_join") == serial


# ---------------------------------------------------------------------------
# whole queries through the planner
# ---------------------------------------------------------------------------

class TestQueryParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_run_query_workers_matches_serial(self, seed):
        query = random_multimodel_instance(seed)
        serial = run_query(query)
        assert run_query(query, workers=WORKERS) == serial, seed

    def test_plan_carries_partitions(self):
        query = example34_instance(4).query
        plan = plan_query(query, workers=4)
        if plan.partitions > 1:
            assert plan.partition_axis == plan.order[0]
        assert plan_query(query).partitions == 1

    @pytest.mark.parametrize("algorithm", ["xjoin", "baseline"])
    def test_forced_algorithm_parity(self, algorithm):
        query = example34_instance(4).query
        serial = run_query(query, algorithm=algorithm)
        for transport in TRANSPORTS:
            parallel = executor(transport).run_query(query,
                                                     algorithm=algorithm)
            assert parallel == serial, (algorithm, transport)


# ---------------------------------------------------------------------------
# twig algorithms
# ---------------------------------------------------------------------------

TWIG_PATTERNS = [
    "oa=open_auction(/ir=itemref, //pr=personref)",
    "p=person(/nm=name, //i=interest)",
    "oa=open_auction(//bd=bidder(/pr=personref))",
    "nm=name",  # single-node twig: the root is the only stream
]


class TestTwigParity:
    @pytest.fixture(scope="class")
    def document(self):
        return xmark_document(1.0, seed=7)

    @pytest.mark.parametrize("pattern", TWIG_PATTERNS)
    def test_every_registered_matcher(self, document, pattern):
        twig = parse_twig(pattern)
        for name in available_twig_algorithms():
            matcher = get_twig_algorithm(name)
            if not matcher.supports(twig):
                continue
            serial = matcher.run(document, twig)
            for transport in TRANSPORTS:
                parallel = executor(transport).run_twig(document, twig,
                                                        name)
                assert parallel == serial, (name, pattern, transport)

    def test_absent_root_tag(self, document):
        twig = parse_twig("z=zeppelin(//q=cabin)")
        serial = get_twig_algorithm("twigstack").run(document, twig)
        parallel = executor("serial").run_twig(document, twig, "twigstack")
        assert parallel == serial
        assert len(serial) == 0

    def test_planner_chosen_matcher(self, document):
        twig = parse_twig("p=person(/nm=name, //i=interest)")
        serial_rows = get_twig_algorithm("tjfast").run(document, twig)
        parallel = executor("serial").run_twig(document, twig)
        assert parallel == serial_rows


class TestAccelTransportParity:
    """The accelerator rides the *join* partitioner (its compiled
    instance carries no query or documents), so it is the one twig
    matcher that must hold parity over every join transport — including
    pickle/shm/mmap, which reject the navigational matchers' instances."""

    @pytest.fixture(scope="class")
    def document(self):
        return xmark_document(1.0, seed=7)

    @pytest.mark.parametrize("transport", available_transports())
    @pytest.mark.parametrize("pattern", TWIG_PATTERNS)
    def test_accel_every_transport(self, document, pattern, transport):
        twig = parse_twig(pattern)
        serial = get_twig_algorithm("accel").run(document, twig)
        parallel = executor(transport).run_twig(document, twig, "accel")
        assert parallel == serial, (pattern, transport)

    @pytest.mark.parametrize("transport", available_transports())
    def test_accel_predicate_twig_ships(self, document, transport):
        """Value predicates (unpicklable lambdas) are applied while
        lowering in the parent; the shipped instance is pure data, so
        even the spawn transports run predicate twigs."""
        from repro.xml.twig import TwigNode, TwigQuery

        root = TwigNode("oa", tag="open_auction")
        bidder = root.descendant("bd", tag="bidder")
        bidder.child("inc", tag="increase",
                     predicate=lambda v: isinstance(v, int) and v > 25)
        bidder.child("pr", tag="personref",
                     predicate=lambda v: isinstance(v, int) and v < 10)
        twig = TwigQuery(root)
        serial = get_twig_algorithm("accel").run(document, twig)
        parallel = executor(transport).run_twig(document, twig, "accel")
        assert parallel == serial, transport
