"""Tests for the ``python -m repro`` demo runner."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_default_is_figure1(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "jack" in out and "978-3-16-1" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "tom" in capsys.readouterr().out

    def test_bounds(self, capsys):
        assert main(["bounds"]) == 0
        out = capsys.readouterr().out
        assert "n^5" in out
        assert "n^7/2" in out

    def test_figure3(self, capsys):
        assert main(["figure3", "3"]) == 0
        out = capsys.readouterr().out
        assert "ratios" in out

    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_bench(self, capsys):
        assert main(["bench", "30"]) == 0
        out = capsys.readouterr().out
        assert "generic_join" in out
        assert "leapfrog" in out
        assert "xjoin" in out

    def test_bench_json_writes_snapshot(self, capsys, tmp_path,
                                        monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "30", "--json"]) == 0
        out = capsys.readouterr().out
        assert "BENCH_engine.json" in out
        records = json.loads((tmp_path / "BENCH_engine.json").read_text())
        assert records and all(r["suite"] == "engine" for r in records)
        workloads = {r["workload"] for r in records}
        assert {"generic_join", "leapfrog", "xjoin"} <= workloads
        for record in records:
            assert set(record) == {"suite", "scenario", "workload",
                                   "median_ms", "speedup"}
            assert record["median_ms"] >= 0

    def test_explain_default_is_skewed(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        assert "plan for 'skewed'" in out
        assert "order:" in out and "operator:" in out
        assert "observed" in out
        assert "after observation" in out

    def test_explain_multimodel_spec(self, capsys):
        assert main(["explain", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "xjoin" in out
        assert "twig:" in out

    def test_explain_unknown_corpus_exits_two(self, capsys):
        assert main(["explain", "nope"]) == 2
        assert "unknown corpus" in capsys.readouterr().err

    def test_explain_workers_shapes_partitions(self, capsys):
        assert main(["explain", "skewed:n=2048", "--workers", "4"]) == 0
        assert "partitions:" in capsys.readouterr().out

    def test_json_flag_rejected_outside_bench(self, capsys):
        assert main(["selftest", "--json"]) == 2
        assert "--json" in capsys.readouterr().err

    def test_unknown_command_shows_usage(self, capsys):
        assert main(["wat"]) == 2
        captured = capsys.readouterr()
        assert "Commands" in captured.out
        assert "unknown command" in captured.err

    def test_bad_numeric_argument_exits_nonzero(self, capsys):
        assert main(["figure3", "six"]) == 2
        assert "bad argument" in capsys.readouterr().err
