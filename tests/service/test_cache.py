"""PlanCache: LRU bounds plus TinyLFU-style admission control."""

from __future__ import annotations

import pytest

from repro.service.cache import PlanCache


class TestAdmission:
    def test_one_off_keys_never_enter_the_cache(self):
        cache = PlanCache(capacity=4)
        assert cache.get("k") is None
        assert cache.put("k", "plan") is False
        assert len(cache) == 0
        assert cache.rejected == 1

    def test_second_request_admits(self):
        cache = PlanCache(capacity=4)
        cache.get("k")
        cache.put("k", "plan")          # first sighting: rejected
        cache.get("k")                  # second request
        assert cache.put("k", "plan") is True
        assert cache.get("k") == "plan"
        assert cache.hits == 1

    def test_resident_keys_update_in_place(self):
        cache = PlanCache(capacity=4, admission_threshold=1)
        cache.get("k")
        cache.put("k", "old")
        assert cache.put("k", "new") is True  # no admission re-check
        assert cache.get("k") == "new"

    def test_scan_resistance(self):
        """A stream of one-off keys churns the sketch, not the cache."""
        cache = PlanCache(capacity=2, sketch_capacity=8)
        for key in ("hot1", "hot2"):
            cache.get(key)
            cache.get(key)
            cache.put(key, key.upper())
        for step in range(50):  # the scan: every key seen exactly once
            key = f"scan-{step}"
            cache.get(key)
            cache.put(key, "noise")
        assert cache.get("hot1") == "HOT1"
        assert cache.get("hot2") == "HOT2"
        assert len(cache) == 2


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        cache = PlanCache(capacity=2, admission_threshold=1)
        for key in ("a", "b", "c"):
            cache.get(key)
            cache.put(key, key)
        assert cache.get("a") is None   # oldest resident evicted
        assert cache.get("b") == "b"
        assert cache.get("c") == "c"
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = PlanCache(capacity=2, admission_threshold=1)
        for key in ("a", "b"):
            cache.get(key)
            cache.put(key, key)
        cache.get("a")                  # a is now most recent
        cache.get("c")
        cache.put("c", "c")
        assert cache.get("a") == "a"
        assert cache.get("b") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestFalsyValues:
    """Regression: a cached falsy value must hit, not re-miss forever."""

    @pytest.mark.parametrize("value", [None, 0, "", {}, [], False])
    def test_falsy_resident_counts_as_hit(self, value):
        cache = PlanCache(capacity=4, admission_threshold=1)
        cache.get("k")
        assert cache.put("k", value) is True
        before = cache.misses
        assert cache.get("k") == value
        assert cache.hits == 1          # the real proof: a hit, not
        assert cache.misses == before   # an equal-looking miss

    def test_falsy_resident_keeps_lru_recency(self):
        cache = PlanCache(capacity=2, admission_threshold=1)
        for key in ("a", "b"):
            cache.get(key)
            cache.put(key, 0)
        cache.get("a")                  # must refresh recency, not miss
        cache.get("c")
        cache.put("c", "c")
        assert cache.get("a") == 0
        assert cache.get("b", "gone") == "gone"

    def test_get_default_on_genuine_miss(self):
        cache = PlanCache(capacity=2)
        sentinel = object()
        assert cache.get("absent", sentinel) is sentinel
        assert cache.misses == 1


def test_stats_shape():
    cache = PlanCache(capacity=4)
    cache.get("k")
    cache.put("k", "v")
    stats = cache.stats()
    assert stats["size"] == 0 and stats["capacity"] == 4
    assert stats["misses"] == 1 and stats["rejected"] == 1
    assert set(stats) == {"size", "capacity", "hits", "misses",
                          "admitted", "rejected", "evictions"}
