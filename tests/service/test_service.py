"""ReproService request handling, in process (no sockets).

Every test drives :meth:`ReproService.handle_request` directly inside
one event loop, so the full dispatch path — validation, quotas, the
single-writer queue, snapshot evaluation — is exercised without TCP.
"""

from __future__ import annotations

import asyncio

from repro.service.server import ReproService
from repro.service.tenancy import TenantQuota


def run(scenario):
    """Execute one async scenario (a fresh loop per test)."""
    return asyncio.run(scenario())


async def call(service: ReproService, **message):
    return await service.handle_request(message)


async def open_session(service: ReproService, tenant: str = "t") -> str:
    response = await call(service, op="open", tenant=tenant)
    assert response["ok"], response
    return response["session"]


INSERT = {"kind": "insert", "relation": "R", "row": [10963, "eve"]}


class TestBasicOps:
    def test_ping_and_corpus(self):
        async def scenario():
            service = ReproService("figure1")
            pong = await call(service, op="ping", id=1)
            assert pong == {"id": 1, "ok": True, "pong": True, "batches": 0}
            corpus = await call(service, op="corpus")
            assert corpus["corpus"] == "figure1"
            assert corpus["relations"] == {"R": 3}
            assert set(corpus["inputs"]) == {"invoices"}
        run(scenario)

    def test_open_query_close(self):
        async def scenario():
            service = ReproService("figure1")
            sid = await open_session(service)
            answer = await call(service, op="query", tenant="t",
                                session=sid)
            assert answer["ok"] and answer["mode"] == "answer"
            assert answer["rows"]  # figure1 has matches
            evaluated = await call(service, op="query", tenant="t",
                                   session=sid, evaluate=True)
            assert evaluated["mode"] == "run"
            assert evaluated["rows"] == answer["rows"]
            closed = await call(service, op="close", tenant="t",
                                session=sid)
            assert closed["ok"]
            gone = await call(service, op="query", tenant="t", session=sid)
            assert gone["error"] == "unknown_session"
        run(scenario)

    def test_error_codes(self):
        async def scenario():
            service = ReproService("figure1")
            assert (await call(service, op="evict"))["error"] \
                == "bad_request"
            assert (await call(service, op="open"))["error"] \
                == "bad_request"
            assert (await call(service, op="query", tenant="t",
                               session="t-9"))["error"] == "unknown_session"
            sid = await open_session(service)
            missing = await call(service, op="query", tenant="t",
                                 session=sid, snapshot=f"{sid}.s9")
            assert missing["error"] == "unknown_snapshot"
            released = await call(service, op="release", tenant="t",
                                  session=sid, snapshot=f"{sid}.s9")
            assert released["error"] == "unknown_snapshot"
        run(scenario)

    def test_shutdown_releases_everything(self):
        async def scenario():
            service = ReproService("figure1")
            sid = await open_session(service)
            await call(service, op="pin", tenant="t", session=sid)
            bye = await call(service, op="shutdown")
            assert bye["ok"] and bye["bye"]
            state_sessions = service.sessions.all_states()
            assert all(not state.snapshots for state in state_sessions)
        run(scenario)


class TestSnapshots:
    def test_pinned_reads_are_stable_across_updates(self):
        async def scenario():
            service = ReproService("figure1")
            sid = await open_session(service)
            before = await call(service, op="query", tenant="t",
                                session=sid)
            pinned = await call(service, op="pin", tenant="t", session=sid)
            assert pinned["batches"] == 0
            applied = await call(
                service, op="update", tenant="t",
                ops=[INSERT,
                     {"kind": "change_value", "input": "invoices",
                      "start": 1, "text": "changed"}])
            assert applied["ok"] and applied["batches"] == 1
            live = await call(service, op="query", tenant="t", session=sid)
            assert live["rows"] != before["rows"]
            for extra in ({}, {"evaluate": True}):
                stable = await call(service, op="query", tenant="t",
                                    session=sid,
                                    snapshot=pinned["snapshot"], **extra)
                assert stable["rows"] == before["rows"], extra
                assert stable["batches"] == 0
            released = await call(service, op="release", tenant="t",
                                  session=sid,
                                  snapshot=pinned["snapshot"])
            assert released["ok"]
            gone = await call(service, op="query", tenant="t", session=sid,
                              snapshot=pinned["snapshot"])
            assert gone["error"] == "unknown_snapshot"
        run(scenario)

    def test_offload_path_answers_identically(self):
        async def scenario():
            service = ReproService("figure1", offload_threshold=0)
            sid = await open_session(service)
            pinned = await call(service, op="pin", tenant="t", session=sid)
            inline = await call(service, op="query", tenant="t",
                                session=sid, snapshot=pinned["snapshot"])
            offloaded = await call(service, op="query", tenant="t",
                                   session=sid,
                                   snapshot=pinned["snapshot"],
                                   evaluate=True)
            assert offloaded["offloaded"] is True
            assert offloaded["rows"] == inline["rows"]
            assert service.offloaded_queries == 1
        run(scenario)


class TestAtomicBatches:
    def test_invalid_batch_applies_nowhere(self):
        async def scenario():
            service = ReproService("figure1")
            sid = await open_session(service)
            before = await call(service, op="query", tenant="t",
                                session=sid)
            # Valid insert + invalid root delete: all-or-nothing.
            rejected = await call(
                service, op="update", tenant="t",
                ops=[INSERT,
                     {"kind": "delete_subtree", "input": "invoices",
                      "start": 0}])
            assert rejected["error"] == "update"
            assert service.batches_applied == 0
            after = await call(service, op="query", tenant="t",
                               session=sid)
            assert after["rows"] == before["rows"]
        run(scenario)

    def test_update_error_catalogue(self):
        async def scenario():
            service = ReproService("figure1")
            cases = [
                [{"kind": "insert", "relation": "S", "row": [1]}],
                [{"kind": "insert", "relation": "R", "row": [1]}],
                [{"kind": "change_value", "input": "nope",
                  "start": 1, "text": "x"}],
                [{"kind": "change_value", "input": "invoices",
                  "start": 10_000, "text": "x"}],
                [{"kind": "insert_subtree", "input": "invoices",
                  "parent_start": 0, "xml": "<a><b></a>"}],
                [{"kind": "insert_subtree", "input": "invoices",
                  "parent_start": 0, "xml": "<e/>", "index": 99}],
            ]
            for ops in cases:
                response = await call(service, op="update", tenant="t",
                                      ops=ops)
                assert response["error"] == "update", (ops, response)
            assert service.batches_applied == 0
        run(scenario)

    def test_batches_broadcast_to_every_open_session(self):
        async def scenario():
            service = ReproService("figure1")
            first = await open_session(service, "a")
            second = await open_session(service, "b")
            await call(service, op="update", tenant="a", ops=[INSERT])
            one = await call(service, op="query", tenant="a",
                             session=first)
            two = await call(service, op="query", tenant="b",
                             session=second)
            assert one["rows"] == two["rows"]
            assert one["batches"] == two["batches"] == 1
            # A session opened *after* the batch sees the same state.
            third = await open_session(service, "c")
            late = await call(service, op="query", tenant="c",
                              session=third)
            assert late["rows"] == one["rows"]
        run(scenario)


class TestQuotasAndBackpressure:
    def test_session_quota_surfaces_on_the_wire(self):
        async def scenario():
            service = ReproService(
                "figure1", quota=TenantQuota(max_sessions=1))
            await open_session(service)
            denied = await call(service, op="open", tenant="t")
            assert denied["error"] == "quota"
        run(scenario)

    def test_snapshot_quota(self):
        async def scenario():
            service = ReproService(
                "figure1", quota=TenantQuota(max_snapshots=1))
            sid = await open_session(service)
            first = await call(service, op="pin", tenant="t", session=sid)
            assert first["ok"]
            denied = await call(service, op="pin", tenant="t", session=sid)
            assert denied["error"] == "quota"
            await call(service, op="release", tenant="t", session=sid,
                       snapshot=first["snapshot"])
            again = await call(service, op="pin", tenant="t", session=sid)
            assert again["ok"]
        run(scenario)

    def test_full_queue_answers_backpressure(self):
        async def scenario():
            service = ReproService("figure1", queue_limit=1)
            queue = service._ensure_writer()
            blocker = asyncio.get_running_loop().create_future()
            tenant = service.sessions.admit_update("t")
            queue.put_nowait(([dict(INSERT)], tenant, blocker))
            # No await between the fill above and the request below, so
            # the writer task cannot drain first: the queue is full.
            denied = await call(service, op="update", tenant="t",
                                ops=[dict(INSERT)])
            assert denied["error"] == "backpressure"
            assert tenant.pending_updates == 1  # the rejected batch undone
            assert await blocker == 1           # the queued batch applied
            await service.aclose()
        run(scenario)

    def test_pending_update_quota(self):
        async def scenario():
            service = ReproService(
                "figure1", quota=TenantQuota(max_pending_updates=0))
            denied = await call(service, op="update", tenant="t",
                                ops=[dict(INSERT)])
            assert denied["error"] == "quota"
        run(scenario)


class TestPlanCache:
    def test_plans_are_shared_across_tenants(self):
        async def scenario():
            service = ReproService("figure1")
            first = await open_session(service, "a")
            second = await open_session(service, "b")
            for tenant, sid in (("a", first), ("b", second),
                                ("a", first), ("b", second)):
                pinned = await call(service, op="pin", tenant=tenant,
                                    session=sid)
                response = await call(service, op="query", tenant=tenant,
                                      session=sid,
                                      snapshot=pinned["snapshot"],
                                      evaluate=True)
                assert response["ok"]
                await call(service, op="release", tenant=tenant,
                           session=sid, snapshot=pinned["snapshot"])
            stats = await call(service, op="stats")
            cache = stats["plan_cache"]
            # The first executed query's feedback bumps the stats epoch
            # (keys are epoch-stamped), after which identical
            # observations keep it stable; admission threshold 2 then
            # gives miss, miss, miss+admit, hit — the fourth
            # tenant-request is served from the shared cache.
            assert cache["hits"] == 1
            assert cache["admitted"] == 1
            assert stats["adaptive"]["observations"] == 4
        run(scenario)

    def test_epoch_bump_keys_out_cached_plans(self):
        async def scenario():
            service = ReproService("figure1")
            sid = await open_session(service)

            async def snapshot_query():
                pinned = await call(service, op="pin", tenant="t",
                                    session=sid)
                response = await call(service, op="query", tenant="t",
                                      session=sid,
                                      snapshot=pinned["snapshot"],
                                      evaluate=True)
                assert response["ok"]
                await call(service, op="release", tenant="t",
                           session=sid, snapshot=pinned["snapshot"])

            for _ in range(4):  # converge to a cache hit (see above)
                await snapshot_query()
            stats = await call(service, op="stats")
            assert stats["plan_cache"]["hits"] == 1
            # A stats-drift epoch bump (what every applied update batch
            # does) must key the cached plan out: the next identical
            # query is a miss, not a stale hit.
            service.adaptive.store.bump_epoch()
            await snapshot_query()
            stats = await call(service, op="stats")
            assert stats["plan_cache"]["hits"] == 1  # miss — no new hit
            # With the epoch stable again the cache re-converges.
            await snapshot_query()
            await snapshot_query()
            stats = await call(service, op="stats")
            assert stats["plan_cache"]["hits"] == 2
        run(scenario)

    def test_stats_shape(self):
        async def scenario():
            service = ReproService("figure1")
            sid = await open_session(service)
            await call(service, op="query", tenant="t", session=sid)
            stats = await call(service, op="stats")
            assert stats["queries"] == 1
            assert stats["tenants"]["t"]["sessions"] == 1
            assert stats["queue_depth"] == 0
        run(scenario)
