"""Corpus spec parsing and independent-state guarantees."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.corpus import available_corpora, corpus_query


class TestSpecs:
    def test_figure1(self):
        query = corpus_query("figure1")
        assert [r.name for r in query.relations] == ["R"]
        assert [b.name for b in query.twigs] == ["invoices"]

    def test_bookstore_with_parameters(self):
        query = corpus_query("bookstore:orders=6,users=3,seed=1")
        assert len(query.relations[0]) == 6
        assert query.twigs[0].document.nodes("orderLine")
        assert corpus_query("bookstore").relations[0]  # defaults work

    def test_triangle_is_relational_only(self):
        query = corpus_query("triangle:n=4")
        assert len(query.relations) == 3
        assert not query.twigs

    def test_resolution_builds_independent_state(self):
        first = corpus_query("figure1")
        second = corpus_query("figure1")
        assert first.relations[0] is not second.relations[0]
        assert first.twigs[0].document is not second.twigs[0].document
        # ...but byte-identical: same rows, same canonical labels.
        assert first.naive_join().sorted_rows() \
            == second.naive_join().sorted_rows()

    def test_available_corpora_all_resolve(self):
        for name in available_corpora():
            assert corpus_query(name).relations


class TestBadSpecs:
    @pytest.mark.parametrize("spec", [
        "warehouse",                      # unknown corpus
        "bookstore:orders",               # missing =value
        "bookstore:orders=ten",           # non-integer
        "bookstore:shelves=3",            # unknown parameter
        "triangle:n=4,m=2",               # extra parameter
    ])
    def test_rejected_as_bad_request(self, spec):
        with pytest.raises(ServiceError) as info:
            corpus_query(spec)
        assert info.value.code == "bad_request"
