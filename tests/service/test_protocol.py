"""Wire-protocol units: framing, validation, deterministic rows."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.protocol import (
    decode_message,
    encode_message,
    error_response,
    ok_response,
    require_field,
    rows_to_wire,
    validate_request,
    validate_update_ops,
)


class TestFraming:
    def test_round_trip(self):
        message = {"op": "ping", "id": 7, "note": "héllo"}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert decode_message(line) == message
        assert decode_message(line.decode("utf-8")) == message

    def test_invalid_json_is_bad_request(self):
        with pytest.raises(ServiceError) as info:
            decode_message(b"{not json\n")
        assert info.value.code == "bad_request"

    def test_non_object_payload_is_bad_request(self):
        with pytest.raises(ServiceError) as info:
            decode_message(b"[1,2]\n")
        assert info.value.code == "bad_request"


class TestValidation:
    def test_known_op_passes(self):
        assert validate_request({"op": "pin"}) == "pin"

    @pytest.mark.parametrize("message", [{}, {"op": 3}, {"op": "evict"}])
    def test_bad_op_is_bad_request(self, message):
        with pytest.raises(ServiceError) as info:
            validate_request(message)
        assert info.value.code == "bad_request"

    def test_require_field_type_checks(self):
        assert require_field({"tenant": "t"}, "tenant") == "t"
        with pytest.raises(ServiceError):
            require_field({}, "tenant")
        with pytest.raises(ServiceError):
            require_field({"tenant": 5}, "tenant")

    def test_require_field_rejects_bool_as_int(self):
        assert require_field({"start": 3}, "start", int) == 3
        with pytest.raises(ServiceError):
            require_field({"start": True}, "start", int)


class TestEnvelopes:
    def test_ok_echoes_the_id(self):
        assert ok_response(9, rows=[]) == {"id": 9, "ok": True, "rows": []}

    def test_service_error_keeps_its_code(self):
        response = error_response(4, ServiceError("quota", "full"))
        assert response == {"id": 4, "ok": False,
                            "error": "quota", "message": "full"}

    def test_other_exceptions_map_to_internal(self):
        response = error_response(None, RuntimeError("boom"))
        assert response["error"] == "internal"
        assert response["message"] == "boom"


class TestRows:
    def test_rows_are_sorted_lists(self):
        rows = {(2, "b"), (1, "a"), (1, "Z")}
        assert rows_to_wire(rows) == [[1, "Z"], [1, "a"], [2, "b"]]


class TestUpdateOps:
    def test_every_kind_validates(self):
        ops = [
            {"kind": "insert", "relation": "R", "row": [1, 2]},
            {"kind": "delete", "relation": "R", "row": [1, 2]},
            {"kind": "insert_subtree", "input": "T", "parent_start": 0,
             "xml": "<e/>"},
            {"kind": "delete_subtree", "input": "T", "start": 3},
            {"kind": "change_value", "input": "T", "start": 3, "text": "x"},
        ]
        assert validate_update_ops(ops) is ops

    @pytest.mark.parametrize("ops", [
        None, [], "ops", [3],
        [{"kind": "compact"}],
        [{"kind": "insert", "relation": "R"}],            # no row
        [{"kind": "insert", "relation": "R", "row": 5}],  # row not a list
        [{"kind": "change_value", "input": "T", "start": "3", "text": "x"}],
        [{"kind": "delete_subtree", "input": "T", "start": True}],
    ])
    def test_bad_shapes_are_bad_request(self, ops):
        with pytest.raises(ServiceError) as info:
            validate_update_ops(ops)
        assert info.value.code == "bad_request"
