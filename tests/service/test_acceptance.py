"""The end-to-end acceptance scenario over real TCP.

Eight concurrent clients query pinned snapshots while a ninth streams
interleaved relational + XML update batches. Every answer must be
byte-identical to a serial oracle evaluated at the snapshot's exact
batch count — which also proves no batch is ever observed torn: a half-
applied batch would match no oracle state at all.

The oracle is built by replaying the same deterministic batch sequence
against a private copy of the corpus (specs resolve to fresh state, see
:mod:`repro.service.corpus`) and recording the answer after each batch.
Batch generation is adaptive — delete targets are picked from the
replayed state's current labels — so the stream exercises inserts,
deletes, subtree insertion/deletion and value changes.
"""

from __future__ import annotations

import asyncio

from repro.service.client import ServiceClient
from repro.service.corpus import corpus_query
from repro.service.server import ReproService
from repro.service.tenancy import TenantQuota
from repro.updates.session import QuerySession
from repro.xml.parser import parse_element_tree

CORPUS = "bookstore:orders=12,users=5,seed=3"
CLIENTS = 8
ROUNDS = 5


def order_line_xml(step: int) -> str:
    return (f"<orderLine><orderID>{77_000 + step}</orderID>"
            f"<ISBN>isbn-new-{step}</ISBN><price>{5 + step % 9}</price>"
            "</orderLine>")


def apply_batch(session: QuerySession, ops: "list[dict]") -> None:
    """Mirror the server's dispatch for the oracle replay."""
    for op in ops:
        if op["kind"] == "insert":
            session.insert(op["relation"], tuple(op["row"]))
        elif op["kind"] == "delete":
            session.delete(op["relation"], tuple(op["row"]))
        elif op["kind"] == "insert_subtree":
            document = session.document_of(op["input"])
            session.insert_subtree(
                op["input"], document.node_by_start(op["parent_start"]),
                parse_element_tree(op["xml"]), index=op.get("index"))
        elif op["kind"] == "delete_subtree":
            document = session.document_of(op["input"])
            session.delete_subtree(op["input"],
                                   document.node_by_start(op["start"]))
        else:
            document = session.document_of(op["input"])
            session.change_value(op["input"],
                                 document.node_by_start(op["start"]),
                                 op["text"])


def wire_rows(session: QuerySession) -> "list[list]":
    return [list(row) for row in sorted(session.answer().rows)]


def build_stream() -> "tuple[list[list[dict]], list[list[list]]]":
    """(batches, oracle answer after k batches for k = 0..len(batches)).

    Generated against a replayed private corpus so document addresses
    (region ``start`` labels) are valid at each batch's apply point —
    exactly as they will be on the server, which applies the same
    prefix first.
    """
    oracle = QuerySession(corpus_query(CORPUS))
    twig = oracle.query.twigs[0].name
    batches: "list[list[dict]]" = []
    answers = [wire_rows(oracle)]
    for step in range(24):
        document = oracle.document_of(twig)
        ops: "list[dict]" = [
            {"kind": "insert", "relation": "R",
             "row": [10_000 + step % 12, f"user-{step:04d}"]}]
        if step % 2 == 1:
            ops.append({"kind": "delete", "relation": "R",
                        "row": [10_000 + (step - 1) % 12,
                                f"user-{step - 1:04d}"]})
        if step % 3 == 0:
            ops.append({"kind": "insert_subtree", "input": twig,
                        "parent_start": document.root.start,
                        "xml": order_line_xml(step)})
        if step % 3 == 1:
            lines = document.nodes("orderLine")
            ops.append({"kind": "delete_subtree", "input": twig,
                        "start": lines[step % len(lines)].start})
        if step % 3 == 2:
            prices = document.nodes("price")
            ops.append({"kind": "change_value", "input": twig,
                        "start": prices[step % len(prices)].start,
                        "text": str(step)})
        apply_batch(oracle, ops)
        batches.append(ops)
        answers.append(wire_rows(oracle))
    return batches, answers


async def writer_client(host: str, port: int,
                        batches: "list[list[dict]]") -> None:
    client = await ServiceClient.connect(host, port)
    try:
        for index, ops in enumerate(batches):
            applied = await client.update("writer", ops)
            assert applied["batches"] == index + 1
    finally:
        await client.aclose()


async def reader_client(host: str, port: int, tenant: str,
                        answers: "list[list[list]]",
                        observed: "list[int]") -> None:
    client = await ServiceClient.connect(host, port)
    try:
        sid = await client.open(tenant)
        for round_index in range(ROUNDS):
            pinned = await client.pin(tenant, sid)
            batches = pinned["batches"]
            observed.append(batches)
            expected = answers[batches]
            # Both read paths: the O(1) maintained answer and a full
            # re-evaluation over the pinned inputs (offload-eligible).
            answer = await client.query(tenant, sid,
                                        snapshot=pinned["snapshot"])
            assert answer["batches"] == batches
            assert answer["rows"] == expected, \
                f"{tenant} r{round_index}: answer diverged at {batches}"
            evaluated = await client.query(tenant, sid,
                                           snapshot=pinned["snapshot"],
                                           evaluate=True)
            assert evaluated["rows"] == expected, \
                f"{tenant} r{round_index}: evaluation diverged at {batches}"
            await client.release(tenant, sid, pinned["snapshot"])
        await client.close(tenant, sid)
    finally:
        await client.aclose()


def test_eight_concurrent_readers_under_an_update_stream():
    batches, answers = build_stream()

    async def scenario():
        service = ReproService(
            CORPUS, queue_limit=64,
            quota=TenantQuota(max_sessions=2, max_snapshots=4,
                              max_pending_updates=64))
        server = await asyncio.start_server(service._serve_connection,
                                            "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        observed: "list[int]" = []
        try:
            await asyncio.gather(
                writer_client("127.0.0.1", port, batches),
                *(reader_client("127.0.0.1", port, f"tenant-{index}",
                                answers, observed)
                  for index in range(CLIENTS)))
        finally:
            await service.aclose()
            server.close()
            await server.wait_closed()
        return service, observed

    service, observed = asyncio.run(scenario())
    assert service.batches_applied == len(batches)
    assert len(observed) == CLIENTS * ROUNDS
    # The run only proves concurrency if pins actually interleaved with
    # the stream: some mid-stream state must have been observed.
    assert any(0 < batches_seen < len(batches)
               for batches_seen in observed), observed
    # Every session was closed, every snapshot released.
    assert not service.sessions.all_states() \
        or all(not state.snapshots
               for state in service.sessions.all_states())


def test_oracle_stream_is_self_consistent():
    """The generator itself: replaying the emitted batches on a second
    private corpus reproduces the recorded oracle states exactly."""
    batches, answers = build_stream()
    replay = QuerySession(corpus_query(CORPUS))
    assert wire_rows(replay) == answers[0]
    for index, ops in enumerate(batches):
        apply_batch(replay, ops)
        assert wire_rows(replay) == answers[index + 1], f"batch {index}"
