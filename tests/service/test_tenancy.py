"""Tenant quotas and session accounting (no server, no sockets)."""

from __future__ import annotations

import pytest

from repro.data.scenarios import figure1_query
from repro.errors import ServiceError
from repro.service.tenancy import SessionManager, TenantQuota
from repro.updates.session import QuerySession


def open_session(manager: SessionManager, tenant: str):
    return manager.admit_session(tenant, QuerySession(figure1_query()))


class TestSessionQuota:
    def test_session_limit_is_per_tenant(self):
        manager = SessionManager(TenantQuota(max_sessions=2))
        open_session(manager, "a")
        open_session(manager, "a")
        with pytest.raises(ServiceError) as info:
            open_session(manager, "a")
        assert info.value.code == "quota"
        open_session(manager, "b")  # another tenant is unaffected

    def test_close_frees_a_slot(self):
        manager = SessionManager(TenantQuota(max_sessions=1))
        state = open_session(manager, "a")
        manager.close_session("a", state.sid)
        open_session(manager, "a")

    def test_session_ids_are_tenant_scoped(self):
        manager = SessionManager()
        first = open_session(manager, "a")
        second = open_session(manager, "a")
        other = open_session(manager, "b")
        assert first.sid != second.sid
        assert other.sid.startswith("b-")


class TestSnapshotQuota:
    def test_snapshot_limit_counts_across_sessions(self):
        manager = SessionManager(TenantQuota(max_snapshots=2))
        first = open_session(manager, "a")
        second = open_session(manager, "a")
        for state in (first, second):
            manager.admit_snapshot(state)
            state.register_snapshot(state.session.pin())
        with pytest.raises(ServiceError) as info:
            manager.admit_snapshot(first)
        assert info.value.code == "quota"

    def test_close_releases_the_snapshots(self):
        manager = SessionManager()
        state = open_session(manager, "a")
        snapshot = state.session.pin()
        state.register_snapshot(snapshot)
        session = state.session
        manager.close_session("a", state.sid)
        assert snapshot.released
        assert session.mvcc.active_count() == 0


class TestUpdateQuota:
    def test_pending_updates_are_bounded(self):
        manager = SessionManager(TenantQuota(max_pending_updates=2))
        manager.admit_update("a")
        manager.admit_update("a")
        with pytest.raises(ServiceError) as info:
            manager.admit_update("a")
        assert info.value.code == "quota"
        # Draining (the writer's decrement) reopens the gate.
        manager.tenant("a").pending_updates -= 1
        manager.admit_update("a")


class TestLookup:
    def test_unknown_session_has_its_own_code(self):
        manager = SessionManager()
        with pytest.raises(ServiceError) as info:
            manager.state("a", "a-99")
        assert info.value.code == "unknown_session"

    def test_counts_report_per_tenant(self):
        manager = SessionManager()
        state = open_session(manager, "a")
        manager.admit_snapshot(state)
        state.register_snapshot(state.session.pin())
        manager.admit_update("a")
        assert manager.counts() == {
            "a": {"sessions": 1, "snapshots": 1, "pending_updates": 1}}
        assert len(manager.all_states()) == 1
