"""Tests for the synthetic workloads and the Figure 1 scenario."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.data.random_instances import (
    random_multimodel_instance,
    random_relation,
    random_twig,
)
from repro.data.scenarios import (
    bookstore_instance,
    figure1_document,
    figure1_query,
    figure1_relation,
    figure1_twig,
)
from repro.data.synthetic import (
    agm_tight_triangle,
    example33_instance,
    example33_relations,
    example34_instance,
    example34_relations,
    figure2_twig,
    worst_case_document,
)
from repro.relational.joins import hash_join
from repro.relational.leapfrog import leapfrog_triejoin
from repro.xml.navigation import match_embeddings

import random


class TestWorstCaseDocument:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_tag_counts(self, n):
        doc = worst_case_document(n)
        assert doc.tag_count("A") == 1
        for tag in "BCDEFGH":
            assert doc.tag_count(tag) == n

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_twig_match_count_is_n5(self, n):
        doc = worst_case_document(n)
        embeddings = match_embeddings(doc, figure2_twig())
        assert len(embeddings) == n ** 5

    def test_document_size(self):
        n = 4
        doc = worst_case_document(n)
        assert doc.size() == 1 + 7 * n


class TestExampleRelations:
    def test_example33_shapes(self):
        r1, r2 = example33_relations(5)
        assert r1.schema.attributes == ("B", "D")
        assert r2.schema.attributes == ("F", "G", "H")
        assert len(r1) == len(r2) == 5

    def test_example34_shapes(self):
        r1, r2 = example34_relations(5)
        assert r1.schema.attributes == ("A", "B", "C", "D")
        assert r2.schema.attributes == ("E", "F", "G", "H")
        assert len(r1) == len(r2) == 5

    def test_example34_instance_metadata(self):
        instance = example34_instance(3)
        assert instance.expected_result_size == 3
        assert instance.expected_twig_matches == 243

    def test_symbolic_exponents(self):
        assert example33_instance(2).query.symbolic_exponent() == \
            pytest.approx(3.5)
        assert example34_instance(2).query.symbolic_exponent() == 2

    def test_twig_only_exponent_is_five(self):
        instance = example34_instance(2)
        twig_only = MultiModelQuery(
            [], [TwigBinding(instance.twig, instance.document)])
        assert twig_only.symbolic_exponent() == 5


class TestAGMTriangle:
    def test_shapes(self):
        r, s, t = agm_tight_triangle(10)
        assert len(r) == len(s) == len(t) == 19

    def test_triangle_output_linear(self):
        rels = agm_tight_triangle(10)
        out = leapfrog_triejoin(rels, ("a", "b", "c"))
        assert len(out) == 3 * 10 - 2

    def test_binary_intermediate_quadratic(self):
        r, s, _ = agm_tight_triangle(10)
        assert len(hash_join(r, s)) >= 10 * 10


class TestFigure1Scenario:
    def test_relation_contents(self):
        assert (35768, "bob") in figure1_relation()

    def test_document_parses(self):
        doc = figure1_document()
        assert doc.tag_count("orderLine") == 2
        assert doc.tag_count("discount") == 2

    def test_twig_shape(self):
        twig = figure1_twig()
        assert twig.attributes == ("orderLine", "orderID", "ISBN", "price")

    def test_query_attributes(self):
        query = figure1_query()
        assert "userID" in query.attributes
        assert "ISBN" in query.attributes

    def test_bookstore_instance_sizes(self):
        query = bookstore_instance(20, 5, seed=1)
        assert len(query.relations[0]) == 20
        assert query.twigs[0].document.tag_count("orderLine") == 20

    def test_bookstore_deterministic(self):
        a = bookstore_instance(10, 3, seed=9)
        b = bookstore_instance(10, 3, seed=9)
        assert a.relations[0] == b.relations[0]


class TestRandomInstances:
    def test_random_twig_names_distinct(self):
        twig = random_twig(random.Random(5), ["x", "y"], max_nodes=6)
        names = [n.name for n in twig.nodes()]
        assert len(names) == len(set(names))

    def test_random_relation_shape(self):
        relation = random_relation(random.Random(1), "R", ["a", "b"])
        assert relation.schema.attributes == ("a", "b")

    @given(st.integers(0, 2_000))
    @settings(max_examples=30, deadline=None)
    def test_random_instance_well_formed(self, seed):
        query = random_multimodel_instance(seed)
        assert query.relations
        assert query.twigs
        graph = query.hypergraph()
        assert set(query.attributes) >= set(query.twigs[0].twig.attributes)
        assert len(graph.edges) == len(query.relations) + len(
            query.decompositions[query.twigs[0].name].paths)

    def test_random_instance_deterministic(self):
        a = random_multimodel_instance(123)
        b = random_multimodel_instance(123)
        assert a.relations[0] == b.relations[0]
        assert a.twigs[0].twig.attributes == b.twigs[0].twig.attributes
