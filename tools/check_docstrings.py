#!/usr/bin/env python3
"""Public-API docstring gate (ruff D1-subset, dependency-free).

Enforces the ``pydocstyle`` D1 "missing docstring" rules on **public**
names, scoped to the packages that promise documented APIs:

* D100 — public module missing a docstring
* D101 — public class missing a docstring
* D102 — public method missing a docstring
* D103 — public function missing a docstring
* D104 — public package (``__init__.py``) missing a docstring

A name is public unless it (or any enclosing scope) starts with ``_``;
dunder methods and ``__init__`` are exempt (D105/D107 are deliberately
out of scope, matching the ruff ``select`` list in ``pyproject.toml``).
Methods overriding a documented base (same name, decorated with
``@override``-style ``# noqa: D102``) can opt out with the standard
``noqa`` comment.

Usage: ``python tools/check_docstrings.py [paths...]`` (defaults to the
scoped packages). Exit 1 listing every violation. CI runs this script;
environments with ruff installed can equivalently run
``ruff check --select D100,D101,D102,D103,D104 <paths>``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: The packages whose public APIs must be documented.
DEFAULT_SCOPE = [
    "src/repro/buffers",
    "src/repro/engine",
    "src/repro/mvcc",
    "src/repro/parallel",
    "src/repro/service",
    "src/repro/updates",
]


def _noqa_lines(source: str) -> set[int]:
    """Line numbers carrying a ``noqa`` for D1 rules (or bare noqa)."""
    lines = set()
    for number, line in enumerate(source.splitlines(), start=1):
        lowered = line.lower()
        if "# noqa" not in lowered:
            continue
        marker = lowered.split("# noqa", 1)[1]
        if not marker.strip(" :") or "d1" in marker:
            lines.add(number)
    return lines


def check_file(path: Path) -> list[str]:
    """All D1 violations in one file, formatted ``path:line: CODE name``."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    noqa = _noqa_lines(source)
    violations: list[str] = []

    if ast.get_docstring(tree) is None:
        code = "D104" if path.name == "__init__.py" else "D100"
        kind = "package" if code == "D104" else "module"
        violations.append(f"{path}:1: {code} missing docstring "
                          f"in public {kind}")

    def visit(node: ast.AST, inside_class: bool, private: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                hidden = private or child.name.startswith("_")
                if not hidden and ast.get_docstring(child) is None \
                        and child.lineno not in noqa:
                    violations.append(
                        f"{path}:{child.lineno}: D101 missing docstring "
                        f"in public class {child.name!r}")
                visit(child, True, hidden)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                dunder = child.name.startswith("__") \
                    and child.name.endswith("__")
                hidden = private or child.name.startswith("_")
                if not hidden and not dunder \
                        and ast.get_docstring(child) is None \
                        and child.lineno not in noqa:
                    code, kind = (("D102", "method") if inside_class
                                  else ("D103", "function"))
                    violations.append(
                        f"{path}:{child.lineno}: {code} missing docstring "
                        f"in public {kind} {child.name!r}")
                # Nested defs are implementation detail: do not descend.

    visit(tree, False, False)
    return violations


def main(argv: list[str]) -> int:
    """Check every ``.py`` file under the given (or default) paths."""
    roots = [Path(p) for p in (argv or DEFAULT_SCOPE)]
    violations: list[str] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            violations.extend(check_file(file))
    for violation in violations:
        print(violation)
    if violations:
        print(f"\n{len(violations)} missing public docstring(s)",
              file=sys.stderr)
        return 1
    print(f"docstring gate ok ({', '.join(str(r) for r in roots)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
