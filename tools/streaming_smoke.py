#!/usr/bin/env python
"""CI smoke for the larger-than-RAM streaming build path.

Three checks, in order:

1. **Parity** — an XMark factor-4 corpus streamed through
   :func:`repro.xml.streaming.stream_document` (never materializing
   the node tree) must answer a branching twig with exactly the same
   rows as the in-memory parse-and-columnarize build of the same text.

2. **Bounded memory** — a DBLP-style corpus builds in a fresh
   subprocess whose ``RLIMIT_DATA`` is capped at 1.5x the arena's
   on-disk size (below the 2x the acceptance criterion allows). The
   cap binds the heap but not the file-backed read-only ``mmap``, so
   the streamed build fits and the in-memory build of the identical
   text — run under the same cap as a negative control — dies with
   ``MemoryError``. That asymmetry is the whole point of the
   subsystem: corpora bounded by disk, not by RAM.

3. **No leaks** — nothing matching the ``repro-arena-`` temp-file
   convention survives the run.

Run from the repo root: ``PYTHONPATH=src python tools/streaming_smoke.py``.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO, "src"))

# Runs in a fresh interpreter: cap RLIMIT_DATA, then build one path.
# argv: <cap-bytes> <records> streamed|inmemory
_CAPPED_BUILD = """\
import resource, sys
cap = int(sys.argv[1])
resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))
from repro.data.dblp import dblp_chunks
n = int(sys.argv[2])
if sys.argv[3] == "streamed":
    from repro.xml.streaming import stream_document
    arena = stream_document(dblp_chunks(n, seed=0))
    print("built", arena.meta["size"], "nodes under the cap")
    arena.close(); arena.unlink()
else:
    from repro.xml.columnar import columnar
    from repro.xml.parser import parse_document
    document = parse_document("".join(dblp_chunks(n, seed=0)))
    print("built", columnar(document).size, "nodes under the cap")
"""


def check_parity() -> None:
    """XMark factor 4, streamed vs in-memory: identical twig rows."""
    from repro.buffers.mmapfile import leaked_arena_files
    from repro.xml.arenaview import attach_arena_document
    from repro.xml.interface import get_twig_algorithm
    from repro.xml.parser import parse_document
    from repro.xml.streaming import stream_document
    from repro.xml.twig_parser import parse_twig
    from repro.xml.xmark import xmark_stream_chunks

    text = "".join(xmark_stream_chunks(4, seed=0))
    twig = parse_twig("i=item(/n=name, //c=incategory)")
    matcher = get_twig_algorithm("twigstack")
    serial = matcher.run(parse_document(text), twig)

    arena = stream_document(xmark_stream_chunks(4, seed=0))
    try:
        handle, view = attach_arena_document(arena)
        streamed = matcher.run(handle, twig)
        assert sorted(streamed.rows) == sorted(serial.rows), \
            "streamed arena rows diverged from the in-memory build"
        print(f"parity ok: XMark factor 4, {view.size} nodes, "
              f"{len(streamed.rows)} twig rows identical")
    finally:
        arena.close()
        arena.unlink()
    assert not leaked_arena_files(), leaked_arena_files()


def check_bounded_memory(records: int) -> None:
    """Streamed build fits under a heap cap the in-memory build cannot."""
    from repro.buffers.mmapfile import leaked_arena_files
    from repro.data.dblp import dblp_chunks
    from repro.xml.streaming import stream_document

    arena = stream_document(dblp_chunks(records, seed=0))
    arena_bytes = os.path.getsize(arena.path)
    nodes = arena.meta["size"]
    arena.close()
    arena.unlink()
    cap = int(1.5 * arena_bytes)  # below the 2x-arena-size criterion

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")

    def capped(mode: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-c", _CAPPED_BUILD,
             str(cap), str(records), mode],
            env=env, capture_output=True, text=True)

    streamed = capped("streamed")
    assert streamed.returncode == 0, (
        f"streamed build of {records} records ({nodes} nodes) broke the "
        f"{cap / 1e6:.1f}MB RLIMIT_DATA cap:\n{streamed.stderr}")
    print(f"bounded-memory ok: {nodes} nodes streamed into a "
          f"{arena_bytes / 1e6:.1f}MB arena under a "
          f"{cap / 1e6:.1f}MB heap cap")

    control = capped("inmemory")
    assert control.returncode != 0 and "MemoryError" in control.stderr, (
        "negative control: the in-memory build survived the same cap, "
        "so the cap proves nothing — raise --records")
    print("negative control ok: in-memory build of the same corpus "
          "dies with MemoryError under that cap")
    assert not leaked_arena_files(), leaked_arena_files()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=30000,
                        help="DBLP records for the capped build "
                             "(default: 30000)")
    arguments = parser.parse_args()
    check_parity()
    check_bounded_memory(arguments.records)
    print("streaming smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
