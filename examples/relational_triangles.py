"""The relational WCOJ substrate on its own: triangles, tries, leapfrog.

The paper stands on AGM bounds and worst-case optimal relational joins
(Ngo et al., Veldhuizen's Leapfrog Triejoin). This example exercises that
substrate directly: the classic skewed triangle where every binary join
plan materialises a quadratic intermediate but WCOJ stays linear.

Run with:  python examples/relational_triangles.py
"""

import time

from repro import JoinStats, Relation, generic_join, leapfrog_triejoin
from repro.core.agm import agm_bound
from repro.core.hypergraph import Hypergraph
from repro.data.synthetic import agm_tight_triangle
from repro.relational.plans import execute_plan, left_deep_plan


def triangle_bound(n: int) -> float:
    graph = Hypergraph()
    for name, attrs in (("R", "ab"), ("S", "bc"), ("T", "ac")):
        graph.add_edge(name, list(attrs), cardinality=2 * n - 1)
    return agm_bound(graph).bound


def main():
    n = 120
    relations = agm_tight_triangle(n)
    named = {r.name: r for r in relations}
    print(f"triangle instance: |R| = |S| = |T| = {2 * n - 1}")
    print(f"AGM bound: {triangle_bound(n):.0f} tuples "
          "(= |R|^(3/2) with the half-half-half cover)\n")

    # Binary plan: (R ⋈ S) ⋈ T.
    stats = JoinStats()
    start = time.perf_counter()
    binary = execute_plan(left_deep_plan(["R", "S", "T"]), named,
                          stats=stats)
    elapsed = time.perf_counter() - start
    print(f"binary plan:   {len(binary):>6} results, "
          f"max intermediate {stats.max_intermediate:>6}, "
          f"{elapsed * 1e3:7.1f}ms")

    # Leapfrog Triejoin.
    stats = JoinStats()
    start = time.perf_counter()
    lftj = leapfrog_triejoin(relations, ("a", "b", "c"), stats=stats)
    elapsed = time.perf_counter() - start
    print(f"LFTJ:          {len(lftj):>6} results, "
          f"max intermediate {stats.max_intermediate:>6}, "
          f"{elapsed * 1e3:7.1f}ms")

    # Generic join.
    stats = JoinStats()
    start = time.perf_counter()
    gj = generic_join(relations, ("a", "b", "c"), stats=stats)
    elapsed = time.perf_counter() - start
    print(f"generic join:  {len(gj):>6} results, "
          f"max intermediate {stats.max_intermediate:>6}, "
          f"{elapsed * 1e3:7.1f}ms")

    assert set(binary.project(("a", "b", "c"))) == set(lftj) == set(gj)
    print("\nall three agree; only the binary plan paid the quadratic "
          "intermediate.")


if __name__ == "__main__":
    main()
