"""Querying XML with the XPath subset and the twig algorithms.

Shows the XPath front-end compiling to twigs, and the four twig matchers
(naive, structural-join pipeline, TwigStack, TJFast) agreeing on a small
product catalogue.

Run with:  python examples/xpath_queries.py
"""

from repro import parse_document, parse_xpath
from repro.xml.navigation import match_relation
from repro.xml.structural_join import structural_join_pipeline
from repro.xml.tjfast import tjfast
from repro.xml.twig import pattern_string
from repro.xml.twigstack import twig_stack

CATALOGUE = """
<catalogue>
  <category>
    <name>databases</name>
    <book><title>WCOJ in practice</title><price>45</price>
      <author><name>ngo</name></author></book>
    <book><title>Twig joins</title><price>30</price>
      <author><name>bruno</name></author></book>
  </category>
  <category>
    <name>systems</name>
    <book><title>Schedulers</title><price>50</price>
      <author><name>ousterhout</name></author></book>
  </category>
</catalogue>
"""

QUERIES = [
    "//book/title",
    "//category[name]//book[price]/title",
    "//book[.//name]/price",
]


def main():
    document = parse_document(CATALOGUE)
    for xpath in QUERIES:
        compiled = parse_xpath(xpath)
        twig = compiled.twig
        print(f"XPath:  {xpath}")
        print(f"twig:   {pattern_string(twig.root)}")
        answers = {
            "naive": match_relation(document, twig),
            "pipeline": structural_join_pipeline(document, twig),
            "twigstack": twig_stack(document, twig),
            "tjfast": tjfast(document, twig),
        }
        reference = answers["naive"]
        assert all(result == reference for result in answers.values())
        leaf = twig.attributes[-1]
        values = sorted({row[reference.schema.index(leaf)]
                         for row in reference},
                        key=lambda v: str(v))
        print(f"values of the last step ({twig.node(leaf).tag}): {values}")
        print()


if __name__ == "__main__":
    main()
