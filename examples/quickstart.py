"""Quickstart: join a relational table with an XML document in ~30 lines.

Run with:  python examples/quickstart.py
"""

from repro import (
    JoinStats,
    MultiModelQuery,
    Relation,
    TwigBinding,
    parse_document,
    parse_twig,
    xjoin,
)

# 1. A relational table: who placed which order.
orders = Relation(
    "orders", ("orderID", "userID"),
    [(10963, "jack"), (20134, "tom"), (35768, "bob")])

# 2. An XML invoice database (parsed with the library's own parser).
invoices = parse_document("""
<invoices>
  <orderLine>
    <orderID>10963</orderID><ISBN>978-3-16-1</ISBN><price>30</price>
  </orderLine>
  <orderLine>
    <orderID>20134</orderID><ISBN>634-3-12-2</ISBN><price>20</price>
  </orderLine>
</invoices>
""")

# 3. A twig pattern over the XML. Node names double as join attributes:
#    `orderID` here joins with the relational column `orderID`.
twig = parse_twig("orderLine(/orderID, /ISBN, /price)")

# 4. The multi-model query, and its worst-case size bound (AGM over the
#    relational schema + the twig's decomposed path relations).
query = MultiModelQuery([orders], [TwigBinding(twig, invoices)])
bound = query.size_bound()
print(f"attributes:      {query.attributes}")
print(f"size bound:      {bound.bound:.1f} tuples "
      f"(exponent {query.symbolic_exponent()} if all inputs had size n)")

# 5. Evaluate with XJoin — worst-case optimal across both models at once.
stats = JoinStats()
result = xjoin(query, stats=stats)
print(f"max intermediate: {stats.max_intermediate} (never exceeds the bound)")

print("\nQ(userID, ISBN, price):")
for row in result.project(["userID", "ISBN", "price"]).sorted_rows():
    print("  ", row)
