"""Example 3.4 / Figure 3: where the baseline pays n^5 and XJoin doesn't.

Builds the adversarial instance (every twig tag has n nodes, diagonal
relational tables), evaluates it with both algorithms, and prints the
running-time and intermediate-size ratios the paper charts in Figure 3.

Run with:  python examples/adversarial_worst_case.py
"""

import time

from repro import JoinStats, baseline_join, xjoin
from repro.data.synthetic import example34_instance


def evaluate(n: int):
    instance = example34_instance(n)
    xstats, bstats = JoinStats(), JoinStats()

    start = time.perf_counter()
    xresult = xjoin(instance.query, stats=xstats)
    xtime = time.perf_counter() - start

    start = time.perf_counter()
    bresult = baseline_join(instance.query, stats=bstats)
    btime = time.perf_counter() - start

    assert xresult == bresult, "the two algorithms must agree"
    assert len(xresult) == instance.expected_result_size
    return xtime, btime, xstats, bstats


def main():
    print("Example 3.4: Q joins R1(A,B,C,D), R2(E,F,G,H) and the twig")
    print("bounds: Q = n^2, Q1 = n^2, Q2 = n^5  ->  the baseline "
          "materialises Q2\n")
    header = (f"{'n':>3} {'|Q|':>5} {'xjoin':>9} {'baseline':>9} "
              f"{'time':>7} {'x-int':>6} {'b-int':>8} {'size':>7}")
    print(header)
    for n in (2, 4, 6, 8, 10):
        xtime, btime, xstats, bstats = evaluate(n)
        time_ratio = btime / max(xtime, 1e-9)
        size_ratio = bstats.max_intermediate / max(xstats.max_intermediate, 1)
        print(f"{n:>3} {n:>5} {xtime * 1e3:>7.1f}ms {btime * 1e3:>7.1f}ms "
              f"{time_ratio:>6.1f}x {xstats.max_intermediate:>6} "
              f"{bstats.max_intermediate:>8} {size_ratio:>6.0f}x")
    print("\n(the paper's Figure 3 reports the same two ratios as bars, "
          "~10-20x at its scale)")


if __name__ == "__main__":
    main()
