"""Reproduces Figure 2 and Example 3.3: twig decomposition and size bounds.

Shows the three decomposition steps on the paper's twig, then computes
the worst-case size bounds — exactly, as rational exponents — for the
twig alone (n^5) and the full multi-model query (n^{7/2}), together with
the dual certificate of Equation 1.

Run with:  python examples/twig_size_bounds.py
"""

from repro import MultiModelQuery, TwigBinding, decompose
from repro.data.synthetic import (
    example33_instance,
    example33_relations,
    figure2_twig,
)
from repro.xml.twig import pattern_string


def show_decomposition():
    twig = figure2_twig()
    print(f"twig X: {pattern_string(twig.root)}")
    decomposition = decompose(twig)
    print("sub-twig roots after cutting A-D edges:",
          [r.name for r in decomposition.subtwig_roots])
    print("root-leaf path relations (the paper's R3..R7):")
    for index, path in enumerate(decomposition.paths):
        print(f"  R{index + 3}({', '.join(path.attributes)})")
    print()


def show_bounds():
    instance = example33_instance(4)
    query = instance.query

    twig_only = MultiModelQuery(
        [], [TwigBinding(instance.twig, instance.document)], name="X")
    print(f"twig-only exponent:  n^{twig_only.symbolic_exponent()} "
          "(paper: n^5)")
    print(f"full-query exponent: n^{query.symbolic_exponent()} "
          "(paper: n^(7/2))")

    packing = query.dual_packing()
    print("\nEquation 1 dual certificate (y_a per attribute):")
    for attribute, weight in sorted(packing.weights.items()):
        if weight:
            print(f"  y_{attribute} = {weight}")
    print(f"  total = {packing.total} (equals the primal cover optimum)")

    bound = query.size_bound()
    print(f"\ninstance bound at n=4: {bound.bound:.2f} "
          f"(= 4^{query.symbolic_exponent()})")
    print("optimal fractional edge cover:")
    for name, weight in bound.cover.support().items():
        print(f"  w[{name}] = {weight}")


def show_relations():
    r1, r2 = example33_relations(4)
    print(f"\nrelations: {r1!r}, {r2!r}")


if __name__ == "__main__":
    show_decomposition()
    show_bounds()
    show_relations()
