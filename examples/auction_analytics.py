"""Multi-model analytics on an XMark-style auction site.

The XML holds the auction site (items, people, open auctions); relational
tables hold what a warehouse would: category labels and account standing.
Two cross-model queries join them:

1. "Which *premium* accounts are bidding on items in the *electronics*
   category?" — joins the auction twig with both tables.
2. The same via the twig answer sizes, comparing XJoin with the baseline.

Run with:  python examples/auction_analytics.py
"""

from repro import (
    JoinStats,
    MultiModelQuery,
    Relation,
    TwigBinding,
    baseline_join,
    parse_twig,
    xjoin,
)
from repro.xml.xmark import XMarkScale, xmark_document

FACTOR = 0.3
SEED = 17


def build_query():
    document = xmark_document(FACTOR, seed=SEED)
    scale = XMarkScale.from_factor(FACTOR)

    # Relational side: category labels and account standing.
    categories = Relation(
        "categories", ("incategory", "label"),
        [(c, "electronics" if c % 3 == 0 else f"cat-{c}")
         for c in range(scale.categories)])
    accounts = Relation(
        "accounts", ("personref", "standing"),
        [(p, "premium" if p % 4 == 0 else "basic")
         for p in range(scale.people)])

    # XML side: auctions referencing items; items carrying categories.
    # Twig node names are the join attributes (itemref twice would
    # collide, so the item twig binds `incategory` and the auction twig
    # binds `itemref` + `personref`; the relational `item_id` bridge is
    # emulated by joining on the category table's labels).
    auction_twig = parse_twig(
        "open_auction(/itemref, /current, //personref)", name="auctions")
    item_twig = parse_twig(
        "item(/name, /incategory)", name="items")

    query = MultiModelQuery(
        [categories, accounts],
        [TwigBinding(auction_twig, document),
         TwigBinding(item_twig, document)],
        name="analytics")
    return query


def main():
    query = build_query()
    print(f"query attributes: {query.attributes}")
    print(f"symbolic exponent: n^{query.symbolic_exponent()}")
    print(f"instance size bound: {query.size_bound().bound:,.0f} tuples\n")

    xstats, bstats = JoinStats(), JoinStats()
    xresult = xjoin(query, "connected", stats=xstats)
    bresult = baseline_join(query, stats=bstats)
    assert xresult == bresult

    premium_electronics = xresult.select(
        lambda t: t["standing"] == "premium" and t["label"] == "electronics")
    print(f"total joined rows:              {len(xresult)}")
    print(f"premium bidders on electronics: "
          f"{len(premium_electronics.project(['personref']))} accounts")
    print(f"\nintermediates: xjoin={xstats.max_intermediate}  "
          f"baseline={bstats.max_intermediate}")
    print(f"wall time:     xjoin={xstats.wall_time * 1e3:.1f}ms  "
          f"baseline={bstats.wall_time * 1e3:.1f}ms")


if __name__ == "__main__":
    main()
