"""The paper's Figure 1 scenario, literal and at scale.

Joins the bookstore orders relation with the XML invoice database, then
scales the same workload to thousands of order lines and compares XJoin
with the traditional baseline (relational join and twig match evaluated
separately, then combined).

Run with:  python examples/bookstore_orders.py
"""

import time

from repro import JoinStats, baseline_join, xjoin
from repro.data.scenarios import bookstore_instance, figure1_query


def literal_figure1():
    print("-- Figure 1 (literal) --")
    query = figure1_query()
    result = xjoin(query).project(["userID", "ISBN", "price"])
    for row in result.sorted_rows():
        print("  ", row)
    print("   (bob's order 35768 has no invoice, so it is dropped)\n")


def scaled():
    print("-- scaled bookstore --")
    header = f"{'orders':>8} {'result':>8} {'xjoin':>10} {'baseline':>10}"
    print(header)
    for orders in (200, 800, 3200):
        query = bookstore_instance(orders, users=100, seed=42)
        start = time.perf_counter()
        xresult = xjoin(query)
        xtime = time.perf_counter() - start
        start = time.perf_counter()
        bresult = baseline_join(query)
        btime = time.perf_counter() - start
        assert xresult == bresult
        print(f"{orders:>8} {len(xresult):>8} "
              f"{xtime * 1e3:>8.1f}ms {btime * 1e3:>8.1f}ms")


def intermediates():
    print("\n-- intermediate sizes (orders=800) --")
    query = bookstore_instance(800, users=100, seed=42)
    for label, evaluate in (("xjoin", xjoin), ("baseline", baseline_join)):
        stats = JoinStats()
        evaluate(query, stats=stats)
        print(f"  {label:>8}: max intermediate = {stats.max_intermediate}")


if __name__ == "__main__":
    literal_figure1()
    scaled()
    intermediates()
