"""Adaptive feedback-driven planner vs the static planner.

The acceptance gate of the adaptive planning subsystem: on the skewed
triangle — built so the static statistics pick a provably bad expansion
order — the adaptive planner's raced plan must reach a >= 1.5x speedup
on the steady-state (prebuilt encoded instance) join, and every
adaptive answer must be byte-identical to the static plan's. The cold
one-shot path and the XMark multi-model scenario are reported (and
parity-checked) but not speed-gated: the former is encode-dominated,
the latter is already well-planned statically.
"""

from __future__ import annotations

from conftest import report_table

from repro.engine.bench import (
    SPEEDUP_TARGET,
    PlannerScenarioResult,
    skewed_triangle_scenario,
    xmark_scenario,
)


def _report(result: PlannerScenarioResult) -> None:
    rows = [[timing.label, f"{timing.static_ms:.1f}ms",
             f"{timing.adaptive_ms:.1f}ms", f"{timing.speedup:.2f}x",
             f">={SPEEDUP_TARGET:g}x" if timing.gated else "(reported)"]
            for timing in result.timings]
    report_table(
        f"Planner: {result.title} [{result.races} race(s)]",
        ["workload", "static", "adaptive", "speedup", "target"], rows)


def _assert_scenario(result: PlannerScenarioResult) -> None:
    assert result.consistent, \
        f"{result.title}: adaptive answer diverged from the static plan"
    for timing in result.timings:
        assert timing.meets_target, (
            f"{result.title}: {timing.label} reached only "
            f"{timing.speedup:.2f}x (target {SPEEDUP_TARGET:g}x)")


def test_skewed_triangle_adaptive_speedup():
    """Skewed triangle (n=4096): >= 1.5x steady-state, exact parity."""
    result = skewed_triangle_scenario(4096)
    _report(result)
    _assert_scenario(result)
    assert result.adaptive_order != result.static_order, (
        "the adaptive planner chose the static order — the scenario no "
        "longer exercises a planning correction")


def test_xmark_multimodel_no_regression():
    """XMark multi-model: parity through the raced XJoin plan."""
    result = xmark_scenario()
    _report(result)
    _assert_scenario(result)
