"""Figure 3 (right panel): baseline vs XJoin, "X times over XJoin result".

The paper's headline chart shows two bars — running time and intermediate
result size — for the baseline, normalised to XJoin, on synthetic data
built from Example 3.4. The paper reports roughly 10-20x. We regenerate
the same two series over a range of n; asymptotically the ratio is
Θ(n^3) (n^5 baseline intermediates vs n^2 XJoin bound), so which decade it
lands in depends on n — the shape to check is "baseline pays vastly more
on both metrics, growing with n".
"""

from __future__ import annotations

import time

from conftest import report_table

from repro.core.baseline import baseline_join
from repro.core.xjoin import xjoin
from repro.data.synthetic import example34_instance
from repro.instrumentation import JoinStats


def run_both(n: int):
    instance = example34_instance(n)
    xstats, bstats = JoinStats(), JoinStats()
    t0 = time.perf_counter()
    xresult = xjoin(instance.query, stats=xstats)
    xtime = time.perf_counter() - t0
    t0 = time.perf_counter()
    bresult = baseline_join(instance.query, stats=bstats)
    btime = time.perf_counter() - t0
    assert xresult == bresult
    return xtime, btime, xstats, bstats


def test_figure3_ratio_table():
    rows = []
    for n in (2, 4, 6, 8, 10):
        xtime, btime, xstats, bstats = run_both(n)
        time_ratio = btime / max(xtime, 1e-9)
        size_ratio = bstats.max_intermediate / max(xstats.max_intermediate, 1)
        rows.append([
            n,
            f"{xtime * 1e3:.1f}ms", f"{btime * 1e3:.1f}ms",
            f"{time_ratio:.1f}x",
            xstats.max_intermediate, bstats.max_intermediate,
            f"{size_ratio:.1f}x",
        ])
        # The paper's claim: baseline is strictly worse on both metrics,
        # by a growing factor (>=10x on both once n is non-trivial).
        if n >= 6:
            assert time_ratio > 10
            assert size_ratio > 10
    report_table(
        "Figure 3: baseline vs XJoin (times over XJoin result)",
        ["n", "xjoin time", "baseline time", "time ratio",
         "xjoin max-intermediate", "baseline max-intermediate",
         "size ratio"],
        rows)


def test_bench_xjoin_n8(benchmark):
    instance = example34_instance(8)
    benchmark(lambda: xjoin(instance.query))


def test_bench_baseline_n8(benchmark):
    instance = example34_instance(8)
    benchmark(lambda: baseline_join(instance.query))
