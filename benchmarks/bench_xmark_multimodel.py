"""Realistic workload: multi-model analytics over an XMark-style site.

Not a paper experiment — a coverage workload showing the framework on
friendly (non-adversarial) data: auctions and items in XML, category
labels and account standing in relational tables. On such data the
baseline is competitive (its sub-queries are already selective); the
interesting check is that both evaluators agree and stay within the
bound.
"""

from __future__ import annotations

import time

from conftest import report_table

from repro.core.baseline import baseline_join
from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.xjoin import xjoin
from repro.instrumentation import JoinStats
from repro.relational.relation import Relation
from repro.xml.twig_parser import parse_twig
from repro.xml.xmark import XMarkScale, xmark_document


def build_query(factor: float, seed: int = 17) -> MultiModelQuery:
    document = xmark_document(factor, seed=seed)
    scale = XMarkScale.from_factor(factor)
    categories = Relation(
        "categories", ("incategory", "label"),
        [(c, "electronics" if c % 3 == 0 else f"cat-{c}")
         for c in range(scale.categories)])
    accounts = Relation(
        "accounts", ("personref", "standing"),
        [(p, "premium" if p % 4 == 0 else "basic")
         for p in range(scale.people)])
    return MultiModelQuery(
        [categories, accounts],
        [TwigBinding(parse_twig(
            "open_auction(/itemref, /current, //personref)",
            name="auctions"), document),
         TwigBinding(parse_twig("item(/name, /incategory)", name="items"),
                     document)],
        name="analytics")


def test_xmark_multimodel_table():
    rows = []
    for factor in (0.1, 0.2, 0.4):
        query = build_query(factor)
        bound = query.size_bound().bound_ceiling
        xstats, bstats = JoinStats(), JoinStats()
        start = time.perf_counter()
        xresult = xjoin(query, "connected", stats=xstats)
        xtime = time.perf_counter() - start
        start = time.perf_counter()
        bresult = baseline_join(query, stats=bstats)
        btime = time.perf_counter() - start
        assert xresult == bresult
        assert xstats.max_intermediate <= bound
        rows.append([factor, len(xresult), bound,
                     xstats.max_intermediate, bstats.max_intermediate,
                     f"{xtime * 1e3:.1f}ms", f"{btime * 1e3:.1f}ms"])
    report_table(
        "XMark multi-model analytics (friendly data: baseline competitive)",
        ["scale", "result", "bound", "xjoin max-int", "baseline max-int",
         "xjoin", "baseline"],
        rows)


def test_bench_xmark_xjoin(benchmark):
    query = build_query(0.2)
    benchmark(lambda: xjoin(query, "connected"))


def test_bench_xmark_baseline(benchmark):
    query = build_query(0.2)
    benchmark(lambda: baseline_join(query))
