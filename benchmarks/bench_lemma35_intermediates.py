"""Lemma 3.5: XJoin's per-stage intermediates never exceed the LP bound.

For the Example 3.4 family and a set of random multi-model instances, the
table shows the AGM bound of the combined hypergraph next to the largest
intermediate XJoin produced under each order policy — the lemma says the
former dominates the latter at every stage.
"""

from __future__ import annotations

from conftest import report_table

from repro.core.xjoin import xjoin
from repro.data.random_instances import random_multimodel_instance
from repro.data.synthetic import example34_instance
from repro.instrumentation import JoinStats

POLICIES = ("appearance", "domain", "connected")


def test_lemma35_example34_table():
    rows = []
    for n in (2, 4, 6, 8):
        instance = example34_instance(n)
        bound = instance.query.size_bound().bound_ceiling
        worst = 0
        for policy in POLICIES:
            stats = JoinStats()
            xjoin(instance.query, policy, stats=stats)
            assert stats.max_intermediate <= bound
            worst = max(worst, stats.max_intermediate)
        rows.append([n, bound, worst, "OK"])
    report_table(
        "Lemma 3.5 on Example 3.4: max intermediate <= LP bound (= n^2)",
        ["n", "LP bound", "max intermediate over all orders", "lemma"],
        rows)


def test_lemma35_random_instances_table():
    rows = []
    violations = 0
    for seed in range(40):
        query = random_multimodel_instance(seed)
        bound = query.size_bound().bound_ceiling
        for policy in POLICIES:
            stats = JoinStats()
            xjoin(query, policy, stats=stats)
            if stats.max_intermediate > bound:
                violations += 1
    rows.append([40 * len(POLICIES), violations])
    assert violations == 0
    report_table(
        "Lemma 3.5 on random multi-model instances",
        ["runs (instance x order)", "violations"],
        rows)


def test_bench_xjoin_with_stats(benchmark):
    instance = example34_instance(6)

    def run():
        stats = JoinStats()
        return xjoin(instance.query, stats=stats)

    benchmark(run)
