"""Figure 1: the motivating bookstore join, literal and scaled.

The literal three-order example must return {(jack, 978-3-16-1, 30),
(tom, 634-3-12-2, 20)}; the scaled generator grows the same shape to
thousands of order lines for timing.
"""

from __future__ import annotations

import time

from conftest import report_table

from repro.core.baseline import baseline_join
from repro.core.xjoin import xjoin
from repro.data.scenarios import bookstore_instance, figure1_query


def test_figure1_literal_table():
    query = figure1_query()
    result = xjoin(query).project(["userID", "ISBN", "price"])
    expected = {("jack", "978-3-16-1", 30), ("tom", "634-3-12-2", 20)}
    assert set(result) == expected
    assert baseline_join(query) == xjoin(query)
    report_table(
        "Figure 1: query result Q(userID, ISBN, price)",
        ["userID", "ISBN", "price"],
        [list(row) for row in result.sorted_rows()])


def test_bookstore_scaling_table():
    rows = []
    for orders in (100, 400, 1600):
        query = bookstore_instance(orders, users=50, seed=7)
        start = time.perf_counter()
        xresult = xjoin(query)
        xtime = time.perf_counter() - start
        start = time.perf_counter()
        bresult = baseline_join(query)
        btime = time.perf_counter() - start
        assert xresult == bresult
        rows.append([orders, len(xresult),
                     f"{xtime * 1e3:.1f}ms", f"{btime * 1e3:.1f}ms"])
    report_table(
        "Bookstore scenario scaling (matching joins, ~80% match rate)",
        ["order lines", "result size", "xjoin", "baseline"],
        rows)


def test_bench_figure1_xjoin(benchmark):
    query = bookstore_instance(500, users=50, seed=7)
    benchmark(lambda: xjoin(query))


def test_bench_figure1_baseline(benchmark):
    query = bookstore_instance(500, users=50, seed=7)
    benchmark(lambda: baseline_join(query))
