"""Partition-parallel executor vs serial execution.

The acceptance gate of the parallel subsystem: at 4 workers the
morsel-driven executor must reach a >= 2x speedup on the dense triangle
join (n >= 600) and the XMark factor-4 multi-model join, and every
parallel answer must be byte-identical to the serial one.

Parity is asserted unconditionally. The speedup assertion is skipped on
machines with fewer cores than workers — a 4-worker pool cannot beat
serial on 1 core, whatever the implementation — but the measured
numbers are always printed and persisted via ``report_table``.
"""

from __future__ import annotations

import pytest
from conftest import report_table

from repro.parallel.bench import (
    SPEEDUP_TARGET,
    ScenarioResult,
    available_cores,
    triangle_scenario,
    xmark_scenario,
)

WORKERS = 4


def _report(result: ScenarioResult) -> None:
    rows = [[timing.label, f"{timing.serial_ms:.1f}ms",
             f"{timing.parallel_ms:.1f}ms", f"{timing.speedup:.2f}x",
             f">={SPEEDUP_TARGET:g}x" if timing.gated else "(reported)"]
            for timing in result.timings]
    report_table(
        f"Parallel: {result.title} [{available_cores()} cores]",
        ["workload", "serial", f"parallel x{result.workers}",
         "speedup", "target"], rows)


def _assert_scenario(result: ScenarioResult) -> None:
    assert result.consistent, \
        f"{result.title}: parallel answer diverged from serial"
    if not result.cores_sufficient:
        pytest.skip(
            f"{available_cores()} core(s) < {result.workers} workers: "
            "speedup target not physically reachable; parity verified")
    for timing in result.timings:
        assert timing.meets_target, (
            f"{result.title}: {timing.label} reached only "
            f"{timing.speedup:.2f}x (target {SPEEDUP_TARGET:g}x)")


def test_triangle_parallel_speedup():
    """Dense triangle (n=8000 >= 600): >= 2x at 4 workers, exact parity."""
    result = triangle_scenario(8000, workers=WORKERS)
    _report(result)
    _assert_scenario(result)


def test_xmark_parallel_speedup():
    """XMark factor 4 multi-model join: >= 2x at 4 workers, exact parity."""
    result = xmark_scenario(4.0, workers=WORKERS)
    _report(result)
    _assert_scenario(result)
