"""Ablation: the paper's "on-going work" extensions.

The paper closes with: "we will improve the worst-case algorithm by
filtering infeasible intermediate results and partially validating the
twig structure during the joining". Both are implemented as XJoin modes:

* ``ad_prefilter`` — A-D value-pair indexes prune candidates during
  expansion;
* ``partial_validation`` — embeddability of the bound twig attributes is
  checked as soon as they are bound.

The showcase instance makes A-D edges the only selective constraint: the
decomposed paths are singletons, so plain XJoin's value join degenerates
to a cartesian product that the final filter then shrinks from n^2 to n;
the extensions keep the intermediates at n throughout.
"""

from __future__ import annotations

import time

from conftest import report_table

from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.xjoin import xjoin
from repro.data.synthetic import example34_instance
from repro.instrumentation import JoinStats
from repro.xml.model import XMLDocument, XMLNode
from repro.xml.twig_parser import parse_twig


def ad_heavy_instance(n: int) -> MultiModelQuery:
    """n 'a' nodes, each containing exactly its own 'b' descendant."""
    root = XMLNode("r")
    for i in range(n):
        a = root.add("a", text=str(i))
        mid = a.add("m")  # interpose a level so the edge is truly A-D
        mid.add("b", text=str(i))
    document = XMLDocument(root)
    twig = parse_twig("a(//b)")
    return MultiModelQuery([], [TwigBinding(twig, document)], name="Q")


MODES = [
    ("plain", {}),
    ("ad_prefilter", {"ad_prefilter": True}),
    ("partial_validation", {"partial_validation": True}),
    ("both", {"ad_prefilter": True, "partial_validation": True}),
]


def run_mode(query, **kwargs):
    stats = JoinStats()
    start = time.perf_counter()
    result = xjoin(query, stats=stats, **kwargs)
    return result, stats, time.perf_counter() - start


def test_filtering_ablation_ad_heavy_table():
    n = 40
    query = ad_heavy_instance(n)
    rows = []
    reference = None
    plain_intermediate = None
    for label, kwargs in MODES:
        result, stats, elapsed = run_mode(query, **kwargs)
        if reference is None:
            reference = result
            plain_intermediate = stats.max_intermediate
        assert result == reference
        assert len(result) == n
        rows.append([label, stats.max_intermediate, stats.filtered,
                     f"{elapsed * 1e3:.1f}ms"])
    # plain pays the relaxed n^2; the extensions stay linear.
    assert plain_intermediate >= n * n
    for label, kwargs in MODES[1:]:
        _, stats, _ = run_mode(query, **kwargs)
        assert stats.max_intermediate <= 2 * n
    report_table(
        f"Ablation: on-going-work filters (A-D-heavy twig, n={n})",
        ["mode", "max intermediate", "candidates filtered", "time"],
        rows)


def test_filtering_ablation_example34_table():
    """On Example 3.4 the P-C paths are already selective, so the
    extensions change little — included for completeness."""
    query = example34_instance(6).query
    rows = []
    reference = None
    for label, kwargs in MODES:
        result, stats, elapsed = run_mode(query, **kwargs)
        if reference is None:
            reference = result
        assert result == reference
        rows.append([label, stats.max_intermediate, stats.filtered,
                     f"{elapsed * 1e3:.1f}ms"])
    report_table(
        "Ablation: on-going-work filters (Example 3.4, n=6)",
        ["mode", "max intermediate", "candidates filtered", "time"],
        rows)


def test_bench_plain(benchmark):
    query = ad_heavy_instance(30)
    benchmark(lambda: xjoin(query))


def test_bench_ad_prefilter(benchmark):
    query = ad_heavy_instance(30)
    benchmark(lambda: xjoin(query, ad_prefilter=True))


def test_bench_partial_validation(benchmark):
    query = ad_heavy_instance(30)
    benchmark(lambda: xjoin(query, partial_validation=True))
