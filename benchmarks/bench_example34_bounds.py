"""Example 3.4: the bounds of Q, Q1 and Q2 are n^2, n^2 and n^5.

Q joins R1(A,B,C,D), R2(E,F,G,H) and the Figure 2 twig; Q1 is the
relational part alone, Q2 the twig part alone. The baseline evaluates Q1
and Q2 separately and may therefore produce n^5 intermediate records; the
table regenerates the three exponents and the measured sub-query sizes.
"""

from __future__ import annotations

from conftest import report_table

from repro.core.baseline import relational_subquery, twig_subquery
from repro.core.hypergraph import Hypergraph
from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.agm import symbolic_exponent
from repro.data.synthetic import example34_instance


def q1_hypergraph() -> Hypergraph:
    graph = Hypergraph()
    graph.add_edge("R1", ["A", "B", "C", "D"])
    graph.add_edge("R2", ["E", "F", "G", "H"])
    return graph


def test_example34_exponents_table():
    instance = example34_instance(2)
    q_exp = instance.query.symbolic_exponent()
    q1_exp = symbolic_exponent(q1_hypergraph())
    twig_only = MultiModelQuery(
        [], [TwigBinding(instance.twig, instance.document)], name="Q2")
    q2_exp = twig_only.symbolic_exponent()
    assert (q_exp, q1_exp, q2_exp) == (2, 2, 5)
    report_table(
        "Example 3.4: symbolic bounds of Q, Q1, Q2 (paper: n^2, n^2, n^5)",
        ["query", "paper", "computed"],
        [["Q (multi-model)", "n^2", f"n^{q_exp}"],
         ["Q1 (relational only)", "n^2", f"n^{q1_exp}"],
         ["Q2 (twig only)", "n^5", f"n^{q2_exp}"]])


def test_example34_measured_subqueries_table():
    rows = []
    for n in (2, 3, 4):
        instance = example34_instance(n)
        q1 = relational_subquery(instance.query)
        q2 = twig_subquery(instance.query)
        assert len(q1) == n ** 2   # R1 x R2 share no attributes
        assert len(q2) == n ** 5   # the twig's worst case
        rows.append([n, len(q1), n ** 2, len(q2), n ** 5,
                     len(instance.query.naive_join())])
    report_table(
        "Example 3.4: measured sub-query sizes",
        ["n", "|Q1|", "n^2", "|Q2|", "n^5", "|Q| (final)"],
        rows)


def test_bench_q1(benchmark):
    instance = example34_instance(6)
    benchmark(lambda: relational_subquery(instance.query))


def test_bench_q2_twigstack(benchmark):
    instance = example34_instance(6)
    benchmark(lambda: twig_subquery(instance.query))
