"""Batch buffer kernels vs list-based leapfrog; shm spawn transport.

The acceptance gates of the buffers subsystem:

* the batch galloping intersection (:func:`repro.buffers.kernels.
  intersect_many`) must beat the iterator-protocol list-based leapfrog
  by >= 2x on the dense triangle workload (n >= 3000). The kernels are
  single-threaded, so this gate binds on any machine;
* twig matching over a 2-worker **spawn** pool on the ``shm`` transport
  must return exactly the serial answer, ship workers nothing but an
  arena descriptor (attach-only — the columnar view refuses to pickle,
  so the property is structural), and leave ``/dev/shm`` clean.

Pool wall time is reported but ungated — a pool cannot beat serial on
one core, and spawn start-up is priced into every morselled run.
"""

from __future__ import annotations

from conftest import report_table

from repro.buffers.bench import (
    SPEEDUP_TARGET,
    ScenarioResult,
    intersection_scenario,
    spawn_twig_scenario,
)


def _report(result: ScenarioResult, foil: str, batch: str) -> None:
    rows = [[timing.label, f"{timing.list_ms:.1f}ms",
             f"{timing.buffer_ms:.1f}ms", f"{timing.speedup:.2f}x",
             f">={SPEEDUP_TARGET:g}x" if timing.gated else "(reported)"]
            for timing in result.timings]
    report_table(f"Buffers: {result.title}",
                 ["workload", foil, batch, "speedup", "target"], rows)


def test_batch_intersection_speedup():
    """Dense triangle (n=3000): batch kernels >= 2x over list leapfrog."""
    result = intersection_scenario(3000)
    _report(result, "list leapfrog", "intersect_many")
    assert result.consistent, \
        f"{result.title}: batch and list triangle counts diverged"
    for timing in result.timings:
        assert timing.meets_target, (
            f"{result.title}: {timing.label} reached only "
            f"{timing.speedup:.2f}x (target {SPEEDUP_TARGET:g}x)")


def test_spawn_shm_twig_transport():
    """XMark factor 4 twig over spawn+shm: parity, attach-only, no leaks."""
    result = spawn_twig_scenario(4.0, workers=2)
    _report(result, "serial", "spawn+shm x2")
    assert result.consistent, \
        f"{result.title}: shm answer diverged from serial"
    assert result.attach_only, \
        f"{result.title}: the columnar view pickled (attach-only violated)"
    assert not result.leaked, \
        f"{result.title}: leaked shared-memory segments {result.leaked!r}"
