"""Substrate check: WCOJ beats binary plans on the skewed triangle.

The paper builds on the AGM/WCOJ line of work (Ngo et al., Veldhuizen);
this bench validates our relational substrate reproduces the classic
result: on {0}×[n] ∪ [n]×{0} triangles, binary plans materialise Θ(n^2)
intermediates while LFTJ and generic join stay linear in the output.
"""

from __future__ import annotations

import time

from conftest import report_table

from repro.data.synthetic import agm_tight_triangle
from repro.instrumentation import JoinStats
from repro.relational.generic_join import generic_join
from repro.relational.leapfrog import leapfrog_triejoin
from repro.relational.plans import execute_plan, left_deep_plan

ORDER = ("a", "b", "c")


def test_triangle_intermediates_table():
    rows = []
    for n in (20, 50, 100):
        relations = agm_tight_triangle(n)
        named = {r.name: r for r in relations}
        binary_stats = JoinStats()
        binary = execute_plan(left_deep_plan(["R", "S", "T"]), named,
                              stats=binary_stats)
        lftj_stats = JoinStats()
        lftj = leapfrog_triejoin(relations, ORDER, stats=lftj_stats)
        gj_stats = JoinStats()
        gj = generic_join(relations, ORDER, stats=gj_stats)
        assert set(binary.project(ORDER)) == set(lftj) == set(gj)
        assert len(lftj) == 3 * n - 2
        assert binary_stats.max_intermediate >= n * n
        assert lftj_stats.max_intermediate <= 4 * n
        rows.append([n, len(lftj), binary_stats.max_intermediate,
                     lftj_stats.max_intermediate,
                     gj_stats.max_intermediate])
    report_table(
        "Triangle: binary plan vs WCOJ intermediates",
        ["n", "output", "binary max-intermediate",
         "LFTJ max-intermediate", "generic-join max-intermediate"],
        rows)


def test_triangle_time_table():
    rows = []
    n = 150
    relations = agm_tight_triangle(n)
    named = {r.name: r for r in relations}

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    binary = timed(lambda: execute_plan(
        left_deep_plan(["R", "S", "T"]), named))
    lftj = timed(lambda: leapfrog_triejoin(relations, ORDER))
    gj = timed(lambda: generic_join(relations, ORDER))
    rows.append([n, f"{binary * 1e3:.1f}ms", f"{lftj * 1e3:.1f}ms",
                 f"{gj * 1e3:.1f}ms"])
    assert binary > lftj  # the Θ(n^2) intermediate dominates
    report_table("Triangle: running time",
                 ["n", "binary plan", "LFTJ", "generic join"], rows)


def test_bench_binary_plan(benchmark):
    named = {r.name: r for r in agm_tight_triangle(60)}
    benchmark(lambda: execute_plan(left_deep_plan(["R", "S", "T"]), named))


def test_bench_lftj(benchmark):
    relations = agm_tight_triangle(60)
    benchmark(lambda: leapfrog_triejoin(relations, ORDER))


def test_bench_generic_join(benchmark):
    relations = agm_tight_triangle(60)
    benchmark(lambda: generic_join(relations, ORDER))
