"""Columnar document store vs node-object twig matching.

The columnar refactor's headline claim: TwigStack and TJFast running on
:class:`~repro.xml.columnar.ColumnarDocument` postings (shared int
arrays, interned tag paths, pre-parsed values) beat the node-object
reference implementations (:mod:`repro.xml.reference`, the pre-refactor
code) on an XMark document. Both variants must agree exactly — the
timing table is evidence, the equality asserts are the test.
"""

from __future__ import annotations

import time

from conftest import report_table

from repro.xml.columnar import columnar, document_stats
from repro.xml.model import XMLDocument
from repro.xml.reference import reference_tjfast, reference_twig_stack
from repro.xml.tjfast import tjfast
from repro.xml.twig_parser import parse_twig
from repro.xml.twigstack import twig_stack
from repro.xml.xmark import xmark_document

FACTOR = 2.0  # ~200 items / 100 people / 100 auctions

TWIGS = [
    ("auction bidders", "oa=open_auction(/ir=itemref, //pr=personref)"),
    ("person interests", "p=person(/nm=name, //i=interest)"),
    ("items by category", "rg=regions(//it=item(/ic=incategory))"),
    ("bid increases", "oa=open_auction(//bd=bidder(/inc=increase))"),
]


def _timed(fn, repeat: int = 3):
    best = None
    out = None
    for _ in range(repeat):
        start = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return out, best * 1e3


def _fresh_document() -> XMLDocument:
    return xmark_document(FACTOR, seed=42)


def test_columnar_beats_node_objects_table():
    document = _fresh_document()
    columnar(document)  # warm the cache: built once per document
    rows = []
    for label, pattern in TWIGS:
        twig = parse_twig(pattern)
        for algorithm, fast, slow in (
                ("TwigStack", twig_stack, reference_twig_stack),
                ("TJFast", tjfast, reference_tjfast)):
            fast_result, fast_ms = _timed(lambda: fast(document, twig))
            slow_result, slow_ms = _timed(lambda: slow(document, twig))
            assert fast_result == slow_result, (label, algorithm)
            rows.append([f"{label} / {algorithm}", len(fast_result),
                         f"{slow_ms:.1f}ms", f"{fast_ms:.1f}ms",
                         f"{slow_ms / max(fast_ms, 1e-6):.1f}x"])
    report_table(
        "Columnar postings vs node-object streams (XMark factor "
        f"{FACTOR:g}, {document.size()} nodes)",
        ["workload", "|answer|", "node-object", "columnar", "speedup"],
        rows)


def test_columnar_build_is_amortised():
    """The build runs once per document; repeat queries hit the cache."""
    document = _fresh_document()
    first = columnar(document)
    assert columnar(document) is first
    assert document_stats(document) is document_stats(document)
    # Reindexing invalidates: a new version means a new view.
    document.reindex()
    assert columnar(document) is not first


def test_bench_twigstack_columnar(benchmark):
    document = _fresh_document()
    twig = parse_twig(TWIGS[0][1])
    columnar(document)
    benchmark(lambda: twig_stack(document, twig))


def test_bench_twigstack_reference(benchmark):
    document = _fresh_document()
    twig = parse_twig(TWIGS[0][1])
    benchmark(lambda: reference_twig_stack(document, twig))


def test_bench_tjfast_columnar(benchmark):
    document = _fresh_document()
    twig = parse_twig(TWIGS[1][1])
    columnar(document)
    benchmark(lambda: tjfast(document, twig))


def test_bench_tjfast_reference(benchmark):
    document = _fresh_document()
    twig = parse_twig(TWIGS[1][1])
    benchmark(lambda: reference_tjfast(document, twig))
