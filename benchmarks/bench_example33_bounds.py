"""Example 3.3 / Figure 2: the decomposition and its size bounds.

The paper computes, for the twig ``A(/B, /D, //C(/E), //F(/H), //G)`` and
tables R1(B,D), R2(F,G,H) with every input of size n:

* decomposition output R3(A,B), R4(A,D), R5(C,E), R6(F,H), R7(G);
* twig-only bound n^5;
* full-query bound n^{7/2}.

This bench regenerates all three, exactly (rational LP), and compares the
bounds against the actually measured result sizes over a range of n.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import report_table

from repro.core.decomposition import decompose
from repro.core.multimodel import MultiModelQuery, TwigBinding
from repro.core.xjoin import xjoin
from repro.data.synthetic import example33_instance, figure2_twig


def test_decomposition_table():
    decomposition = decompose(figure2_twig())
    rows = [[f"R{i + 3}", "(" + ", ".join(p.attributes) + ")"]
            for i, p in enumerate(decomposition.paths)]
    assert [p.attributes for p in decomposition.paths] == [
        ("A", "B"), ("A", "D"), ("C", "E"), ("F", "H"), ("G",)]
    report_table("Figure 2: twig decomposition (paper: R3..R7)",
                 ["relation", "schema"], rows)


def test_example33_symbolic_exponents_table():
    instance = example33_instance(2)
    twig_only = MultiModelQuery(
        [], [TwigBinding(instance.twig, instance.document)], name="X")
    twig_exp = twig_only.symbolic_exponent()
    query_exp = instance.query.symbolic_exponent()
    assert twig_exp == 5
    assert query_exp == Fraction(7, 2)
    report_table(
        "Example 3.3: symbolic size bounds (all |R| = n)",
        ["query", "paper exponent", "computed exponent"],
        [["twig X", "5", str(twig_exp)],
         ["full Q", "7/2", str(query_exp)]])


def test_example33_bound_vs_measured_table():
    rows = []
    for n in (2, 3, 4, 5):
        instance = example33_instance(n)
        bound = instance.query.size_bound()
        twig_only = MultiModelQuery(
            [], [TwigBinding(instance.twig, instance.document)], name="X")
        twig_bound = twig_only.size_bound()
        result = len(xjoin(instance.query))
        twig_result = len(xjoin(twig_only))
        assert twig_result == n ** 5
        assert twig_bound.bound_ceiling >= twig_result
        assert bound.bound_ceiling >= result
        rows.append([n, n ** 5, twig_result,
                     f"{bound.bound:.1f}", result])
    report_table(
        "Example 3.3: bound vs measured (twig result is exactly n^5)",
        ["n", "twig bound n^5", "twig result",
         "query bound n^3.5", "query result"],
        rows)


def test_bench_symbolic_exponent(benchmark):
    instance = example33_instance(4)
    benchmark(instance.query.symbolic_exponent)


def test_bench_instance_bound(benchmark):
    instance = example33_instance(4)
    benchmark(instance.query.size_bound)
