"""Scalability: running time and intermediates of XJoin vs baseline as n
grows on the Example 3.4 family (the asymptotic gap is n^5 vs n^2)."""

from __future__ import annotations

import time

from conftest import report_table

from repro.core.baseline import baseline_join
from repro.core.xjoin import xjoin
from repro.data.synthetic import example34_instance
from repro.instrumentation import JoinStats


def test_scalability_table():
    rows = []
    previous_ratio = 0.0
    for n in (2, 4, 6, 8, 10, 12):
        instance = example34_instance(n)
        xstats, bstats = JoinStats(), JoinStats()
        start = time.perf_counter()
        xjoin(instance.query, stats=xstats)
        xtime = time.perf_counter() - start
        start = time.perf_counter()
        baseline_join(instance.query, stats=bstats)
        btime = time.perf_counter() - start
        ratio = bstats.max_intermediate / max(xstats.max_intermediate, 1)
        rows.append([n, f"{xtime * 1e3:.1f}", f"{btime * 1e3:.1f}",
                     xstats.max_intermediate, bstats.max_intermediate,
                     f"{ratio:.0f}x"])
        # The intermediate-size gap must grow monotonically with n.
        assert ratio > previous_ratio
        previous_ratio = ratio
    report_table(
        "Scalability on Example 3.4 (times in ms)",
        ["n", "xjoin time", "baseline time",
         "xjoin max-int", "baseline max-int", "gap"],
        rows)


def test_bench_xjoin_n12(benchmark):
    query = example34_instance(12).query
    benchmark(lambda: xjoin(query))
