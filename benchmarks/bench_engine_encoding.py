"""Engine ablation: what dictionary encoding buys, and what it costs.

Two questions the engine refactor must answer with numbers:

1. **Amortisation** — building the EncodedInstance (dictionaries + int
   tries) is extra up-front work; how does it split against the join
   kernel itself? (``JoinStats.phase_times["encode"]`` vs wall time.)
2. **Sharing** — the same instance feeds every registered operator, so
   racing algorithms costs one build, not one per algorithm, and all of
   them decode to identical results.
"""

from __future__ import annotations

import time

from conftest import report_table

from repro.data.synthetic import agm_tight_triangle, example34_instance
from repro.engine.encoded import EncodedInstance
from repro.engine.interface import get_algorithm
from repro.instrumentation import JoinStats
from repro.relational.generic_join import generic_join

ORDER = ("a", "b", "c")


def test_encode_phase_split_table():
    """Encode time is a small, shrinking fraction of total join time."""
    rows = []
    for n in (50, 150, 400):
        relations = agm_tight_triangle(n)
        stats = JoinStats()
        start = time.perf_counter()
        result = generic_join(relations, ORDER, stats=stats)
        total = time.perf_counter() - start
        encode = stats.phase_times["encode"]
        rows.append([n, len(result),
                     f"{encode * 1e3:.2f}ms",
                     f"{total * 1e3:.2f}ms",
                     f"{encode / total:.0%}"])
    report_table(
        "Engine: dictionary-encode phase vs total join time (triangle)",
        ["n", "output", "encode phase", "total", "encode share"],
        rows)


def test_shared_instance_race_table():
    """One encoded instance, every relational operator, equal results."""
    rows = []
    for n in (100, 300):
        relations = agm_tight_triangle(n)
        start = time.perf_counter()
        instance = EncodedInstance.from_relations(relations, ORDER)
        build = time.perf_counter() - start
        timings = {}
        results = {}
        for name in ("generic_join", "leapfrog"):
            start = time.perf_counter()
            results[name] = get_algorithm(name).run(instance)
            timings[name] = time.perf_counter() - start
        assert results["generic_join"] == results["leapfrog"]
        rows.append([n, f"{build * 1e3:.2f}ms",
                     f"{timings['generic_join'] * 1e3:.2f}ms",
                     f"{timings['leapfrog'] * 1e3:.2f}ms"])
    report_table(
        "Engine: one shared instance, raced operators (triangle)",
        ["n", "instance build", "generic join", "LFTJ"],
        rows)


def test_multimodel_instance_reuse_table():
    """XJoin over a prebuilt instance: the build amortises across runs."""
    rows = []
    for n in (4, 8):
        query = example34_instance(n).query
        start = time.perf_counter()
        instance = EncodedInstance.from_query(query, query.attributes)
        build = time.perf_counter() - start
        xjoin_algorithm = get_algorithm("xjoin")
        start = time.perf_counter()
        first = xjoin_algorithm.run(instance)
        run_once = time.perf_counter() - start
        start = time.perf_counter()
        again = xjoin_algorithm.run(instance)
        run_again = time.perf_counter() - start
        assert first == again
        rows.append([n, f"{build * 1e3:.2f}ms",
                     f"{run_once * 1e3:.2f}ms",
                     f"{run_again * 1e3:.2f}ms"])
    report_table(
        "Engine: XJoin over a prebuilt encoded instance (Example 3.4)",
        ["n", "instance build", "first run", "repeat run"],
        rows)


def test_bench_instance_build(benchmark):
    relations = agm_tight_triangle(100)
    benchmark(lambda: EncodedInstance.from_relations(relations, ORDER))


def test_bench_generic_join_on_prebuilt_instance(benchmark):
    instance = EncodedInstance.from_relations(agm_tight_triangle(100), ORDER)
    benchmark(lambda: get_algorithm("generic_join").run(instance))
