"""Substrate check: the twig-matching algorithms the paper builds on.

Compares TwigStack (holistic), TJFast (extended Dewey), the binary
structural-join pipeline and naive navigation on documents where their
relative strengths differ: A-D-heavy nesting (structural joins produce
large edge lists), P-C chains, and the paper's worst-case document.
"""

from __future__ import annotations

import random
import time

from conftest import report_table

from repro.data.synthetic import figure2_twig, worst_case_document
from repro.instrumentation import JoinStats
from repro.xml.generator import chain_document, layered_document
from repro.xml.navigation import match_relation
from repro.xml.structural_join import structural_join_pipeline
from repro.xml.tjfast import tjfast
from repro.xml.twig_parser import parse_twig
from repro.xml.twigstack import twig_stack

ALGORITHMS = [
    ("TwigStack", twig_stack),
    ("TJFast", tjfast),
    ("structural-join", structural_join_pipeline),
    ("naive", match_relation),
]


def run_all(document, twig):
    row = []
    reference = None
    for name, algorithm in ALGORITHMS:
        start = time.perf_counter()
        result = algorithm(document, twig)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = result
        else:
            assert result == reference, f"{name} disagrees"
        row.append(f"{elapsed * 1e3:.1f}ms")
    return row, len(reference)


def test_twig_algorithms_table():
    workloads = [
        ("deep A-D nesting", chain_document(300, tags=("a", "b")),
         parse_twig("a(//b)")),
        ("P-C chain", layered_document([("a", 2), ("b", 2), ("c", 2)]),
         parse_twig("a(/b(/c))")),
        ("branching twig", layered_document([("a", 3), ("b", 2), ("c", 2)]),
         parse_twig("a(/b, //c)")),
        ("paper worst case n=5", worst_case_document(5), figure2_twig()),
    ]
    rows = []
    for label, document, twig in workloads:
        timings, size = run_all(document, twig)
        rows.append([label, size, *timings])
    report_table(
        "Twig matching algorithms (all must agree)",
        ["workload", "|answer|",
         *[name for name, _ in ALGORITHMS]],
        rows)


def test_structural_join_intermediate_blowup_table():
    """The pre-holistic weakness: edge lists far exceed the answer."""
    rows = []
    for depth in (50, 100, 200):
        document = chain_document(depth, tags=("a", "b"))
        twig = parse_twig("a(//b(//c))")
        # No c nodes: the answer is empty but the a//b edge list is Θ(n^2).
        stats = JoinStats()
        result = structural_join_pipeline(document, twig, stats=stats)
        assert len(result) == 0
        holistic_stats = JoinStats()
        twig_stack(document, twig, stats=holistic_stats)
        rows.append([depth, len(result), stats.max_intermediate,
                     holistic_stats.max_intermediate])
        assert stats.max_intermediate > holistic_stats.max_intermediate
    report_table(
        "Empty-answer twig: structural-join pipeline vs TwigStack "
        "intermediates",
        ["chain depth", "|answer|", "pipeline max-intermediate",
         "TwigStack max-intermediate"],
        rows)


def test_bench_twigstack(benchmark):
    document = worst_case_document(4)
    twig = figure2_twig()
    benchmark(lambda: twig_stack(document, twig))


def test_bench_tjfast(benchmark):
    document = worst_case_document(4)
    twig = figure2_twig()
    benchmark(lambda: tjfast(document, twig))


def test_bench_structural_pipeline(benchmark):
    document = worst_case_document(4)
    twig = figure2_twig()
    benchmark(lambda: structural_join_pipeline(document, twig))
