"""Relational XPath accelerator vs holistic twig matchers.

Races the ``accel`` backend (twigs lowered to edge relations over the
region labels and executed by the worst-case-optimal join kernel,
:mod:`repro.xml.accel`) against TJFast and TwigStack on the XMark
factor-4 corpus and on the same corpus streamed into a file-backed
mmap arena (``xmark-stream``).

Row parity across every matcher — and across the partition-parallel
accel run at 2 workers — is asserted unconditionally; speedups are
reported via ``report_table``, not gated, because which side wins is
twig-dependent (the accelerator pays off when value predicates shrink
the candidate streams; pure navigation favours the holistic matchers).
"""

from __future__ import annotations

from conftest import report_table

from repro.xml.bench import AccelScenarioResult, stream_scenario, xmark_scenario

WORKERS = 2
FACTOR = 4.0


def _report(result: AccelScenarioResult) -> None:
    rows = [[timing.label, timing.rival, f"{timing.rival_ms:.2f}ms",
             f"{timing.accel_ms:.2f}ms", f"{timing.speedup:.2f}x"]
            for timing in result.timings]
    report_table(f"Accelerator: {result.title}",
                 ["twig", "rival", "rival", "accel", "speedup"], rows)


def _assert_scenario(result: AccelScenarioResult) -> None:
    assert result.consistent, \
        f"{result.title}: a matcher diverged from the accelerator rows"


def test_accel_xmark():
    """In-memory XMark factor 4: exact parity, speedups reported."""
    result = xmark_scenario(FACTOR, workers=WORKERS)
    _report(result)
    _assert_scenario(result)


def test_accel_xmark_stream():
    """Streamed mmap-arena corpus: exact parity, speedups reported."""
    result = stream_scenario(FACTOR, workers=WORKERS)
    _report(result)
    _assert_scenario(result)
