"""Delta-apply vs rebuild-from-scratch under single-change churn.

The update subsystem's headline claim: once a :class:`QuerySession`
holds a query open, re-answering it after a single-tuple or
single-subtree change costs a small delta (trie splice + label patch +
incremental view maintenance), while the batch engine pays a full
dictionary/trie/columnar rebuild plus a full join per change. The
scenarios are shared with ``python -m repro bench --suite updates``
through :mod:`repro.updates.bench`, so the CLI table and this gate can
never measure different workloads. Both paths must agree exactly — the
timing table is evidence, the asserts are the test.
"""

from __future__ import annotations

from conftest import report_table

from repro.updates.bench import (
    SPEEDUP_TARGET,
    ScenarioResult,
    triangle_scenario,
    xmark_scenario,
)

TRIANGLE_N = 300
XMARK_FACTOR = 2.0


def _assert_and_report(result: ScenarioResult) -> None:
    rows = [[timing.label, f"{timing.delta_ms:.3f}",
             f"{timing.rebuild_ms:.3f}", f"{timing.ratio:.1f}x"]
            for timing in result.timings]
    report_table(f"single-change updates, {result.title}",
                 ["operation", "delta ms/update", "rebuild ms/update",
                  "speedup"],
                 rows)
    assert result.consistent, \
        f"{result.title}: session diverged from rebuild"
    for timing in result.timings:
        assert timing.meets_target, \
            (f"{result.title}: {timing.label} delta-apply only "
             f"{timing.ratio:.1f}x over rebuild "
             f"(target >= {SPEEDUP_TARGET:g}x)")


def test_triangle_single_tuple_updates_table():
    _assert_and_report(triangle_scenario(TRIANGLE_N))


def test_xmark_single_subtree_updates_table():
    _assert_and_report(xmark_scenario(XMARK_FACTOR))
