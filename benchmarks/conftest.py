"""Shared helpers for the benchmark suite.

Every experiment prints a paper-style table through :func:`report_table`,
which also appends it to ``benchmarks/results/experiments.txt`` so the
numbers quoted in EXPERIMENTS.md can be regenerated with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report_table(title: str, headers: list[str],
                 rows: list[list[object]]) -> str:
    """Format, print and persist one experiment table."""
    widths = [max(len(str(h)), *(len(str(row[i])) for row in rows))
              if rows else len(str(h))
              for i, h in enumerate(headers)]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "experiments.txt", "a", encoding="utf-8") as f:
        f.write(text + "\n\n")
    return text
