"""The multi-tenant query service under a live update stream.

The service suite (shared with ``python -m repro bench --suite service``
through :mod:`repro.service.bench`) measures what the MVCC layer buys:
the price of a *consistent* read while a writer keeps superseding state.
Each measured cycle is pin -> snapshot query -> release over real TCP,
with a background writer streaming relational + XML update batches for
the whole run.

Gates are correctness-shaped, not speed-shaped (wall-clock throughput
depends on the host): every client count must complete its full query
budget, the writer must land batches *during* the measurement (otherwise
the run proved nothing about concurrency), and tail latency must stay
within an order of magnitude of the median — a p99/p50 blowup is how a
torn pin or an accidental full-rebuild per read would surface here.
"""

from __future__ import annotations

from conftest import report_table

from repro.service.bench import ServiceBenchResult, run_service_bench

#: p99 may exceed p50 by at most this factor (generous: scheduling
#: jitter under 16 clients on one core is real; a rebuild-per-read
#: regression is 100x+).
TAIL_FACTOR = 25.0


def _report(results: "list[ServiceBenchResult]") -> None:
    rows = [[str(result.clients), f"{result.qps:.1f}",
             f"{result.p50_ms:.2f}ms", f"{result.p99_ms:.2f}ms",
             str(result.queries), str(result.batches)]
            for result in results]
    report_table(f"Service: snapshot reads under writes "
                 f"({results[0].corpus})",
                 ["clients", "q/s", "p50", "p99", "queries", "batches"],
                 rows)


def test_service_throughput_and_tail_latency():
    """1/4/16 clients: full budgets, live writer, bounded tail."""
    results = run_service_bench(queries_per_client=12)
    _report(results)
    for result in results:
        assert result.queries == result.clients * 12, \
            f"{result.clients} clients: completed only {result.queries}"
        assert result.batches > 0, \
            f"{result.clients} clients: the writer never landed a batch"
        assert result.p99_ms <= result.p50_ms * TAIL_FACTOR, (
            f"{result.clients} clients: p99 {result.p99_ms:.2f}ms blew "
            f"past {TAIL_FACTOR:g}x p50 {result.p50_ms:.2f}ms")
