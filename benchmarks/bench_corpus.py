"""Larger-than-RAM corpora: streamed file-arena build vs in-memory.

The acceptance gates of the streamed-build path
(:mod:`repro.xml.streaming` + :mod:`repro.buffers.mmapfile`):

* twig query rows over the cold-attached file arena must equal the
  in-memory build's rows exactly (the SAX path is byte-faithful to the
  parser);
* the streamed build's subprocess peak RSS must stay at or below
  :data:`repro.data.bench.RSS_RATIO_TARGET` of the in-memory build at
  the same record count — the arena grows on disk, the heap does not;
* the run must leave no ``repro-arena-`` temp files behind.

Build and first-query wall times are reported ungated: the streamed
build trades some throughput for bounded memory, and that trade is the
subsystem's point, not a regression.
"""

from __future__ import annotations

from conftest import report_table

from repro.data.bench import (
    RSS_RATIO_TARGET,
    CorpusScenarioResult,
    dblp_corpus_scenario,
)


def _report(result: CorpusScenarioResult) -> None:
    rows = [[timing.label, f"{timing.inmemory_ms:.1f}ms",
             f"{timing.streamed_ms:.1f}ms"]
            for timing in result.timings]
    rows.append(["peak RSS (subprocess)",
                 f"{result.inmemory_peak_kb / 1024:.1f}MB",
                 f"{result.streamed_peak_kb / 1024:.1f}MB"])
    report_table(f"Corpus: {result.title}",
                 ["workload", "in-memory", "streamed arena"], rows)


def test_streamed_corpus_build():
    """DBLP 8k records: parity, bounded RSS, clean arena tempdir."""
    result = dblp_corpus_scenario(8000)
    _report(result)
    assert result.consistent, \
        f"{result.title}: streamed-arena rows diverged from in-memory"
    assert result.meets_rss_target, (
        f"{result.title}: streamed peak RSS ratio {result.rss_ratio:.2f} "
        f"exceeds the {RSS_RATIO_TARGET:g} target "
        f"({result.streamed_peak_kb} vs {result.inmemory_peak_kb} KiB)")
    assert not result.leaked, \
        f"{result.title}: leaked arena temp files {result.leaked!r}"
