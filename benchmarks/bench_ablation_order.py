"""Ablation: sensitivity of XJoin to the attribute expansion order PA.

Every order is worst-case optimal (Lemma 3.5 holds regardless — checked),
but effort differs: a bad order expands large candidate sets before the
selective inputs prune them. The table reports intermediates and trie
seeks per policy plus the worst explicit order we could find.
"""

from __future__ import annotations

import time

from conftest import report_table

from repro.core.planner import attribute_order
from repro.core.xjoin import xjoin
from repro.data.synthetic import example34_instance
from repro.instrumentation import JoinStats


def run_order(query, order):
    stats = JoinStats()
    start = time.perf_counter()
    result = xjoin(query, order, stats=stats)
    elapsed = time.perf_counter() - start
    return result, stats, elapsed


def test_order_ablation_table():
    instance = example34_instance(8)
    query = instance.query
    bound = query.size_bound().bound_ceiling
    orders = {
        "appearance": "appearance",
        "domain": "domain",
        "connected": "connected",
        # Start from the G/B/D side: delays the selective diagonal R1/R2.
        "adversarial": ("G", "B", "D", "C", "E", "F", "H", "A"),
    }
    reference = None
    rows = []
    for label, order in orders.items():
        result, stats, elapsed = run_order(query, order)
        if reference is None:
            reference = result
        assert result == reference
        assert stats.max_intermediate <= bound  # optimal under ANY order
        resolved = attribute_order(query, order)
        rows.append([label, "".join(resolved), stats.max_intermediate,
                     stats.seeks, f"{elapsed * 1e3:.1f}ms"])
    report_table(
        "Ablation: XJoin attribute order (Example 3.4, n=8; bound=64)",
        ["policy", "order", "max intermediate", "trie seeks", "time"],
        rows)


def test_bench_order_appearance(benchmark):
    query = example34_instance(8).query
    benchmark(lambda: xjoin(query, "appearance"))


def test_bench_order_connected(benchmark):
    query = example34_instance(8).query
    benchmark(lambda: xjoin(query, "connected"))


def test_bench_order_adversarial(benchmark):
    query = example34_instance(8).query
    order = ("G", "B", "D", "C", "E", "F", "H", "A")
    benchmark(lambda: xjoin(query, order))
